// Churn: the arrival/departure process of open-membership peers.
//
// The paper's Problem 2 ("instability, heterogeneity and churn") is driven by
// measured session-time distributions from file-sharing networks, which are
// heavy-tailed: most sessions are minutes, a few last days. The driver
// alternates online sessions and offline gaps per peer and invokes the
// protocol's join/leave hooks.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace decentnet::net {

/// Distribution over durations, used for both session and downtime lengths.
struct DurationDist {
  enum class Kind { Constant, Exponential, Pareto, Weibull, LogNormal };

  Kind kind = Kind::Exponential;
  double a = 0;  // Constant: value(s). Exponential: mean(s). Pareto: x_m(s).
                 // Weibull: scale(s). LogNormal: median(s).
  double b = 0;  // Pareto: alpha. Weibull: shape. LogNormal: sigma.

  sim::SimDuration sample(sim::Rng& rng) const;

  static DurationDist constant(double secs) {
    return {Kind::Constant, secs, 0};
  }
  static DurationDist exponential_mean(double secs) {
    return {Kind::Exponential, secs, 0};
  }
  static DurationDist pareto(double x_m_secs, double alpha) {
    return {Kind::Pareto, x_m_secs, alpha};
  }
  static DurationDist weibull(double scale_secs, double shape) {
    return {Kind::Weibull, scale_secs, shape};
  }
  static DurationDist lognormal(double median_secs, double sigma) {
    return {Kind::LogNormal, median_secs, sigma};
  }
};

struct ChurnConfig {
  DurationDist session = DurationDist::weibull(3600, 0.6);  // heavy-tailed
  DurationDist downtime = DurationDist::exponential_mean(1800);
  /// Fraction of peers online at t=0 (the rest start offline).
  double initially_online = 1.0;
};

/// Drives churn for a population of peers identified by dense indices
/// [0, n). The protocol supplies go_online/go_offline callbacks; the driver
/// owns the schedule.
class ChurnDriver {
 public:
  using Hook = std::function<void(std::size_t peer_index)>;
  /// Maps a peer index to the Simulator (kernel shard) its transitions must
  /// run on — e.g. `[&](std::size_t i) -> sim::Simulator& { return
  /// kernel.sim_for(addrs[i].value); }`.
  using ShardRouter = std::function<sim::Simulator&(std::size_t peer_index)>;

  ChurnDriver(sim::Simulator& sim, std::size_t n, ChurnConfig config,
              Hook go_online, Hook go_offline);

  /// Sharded mode: schedule each peer's transitions on its own shard, with
  /// a per-peer RNG stream forked from the driver's (a shared sequential
  /// stream drawn at transition time would race across shards *and* be
  /// schedule-dependent). Must be set before start(); without a router the
  /// driver keeps its legacy shared-stream draw order exactly.
  void set_shard_router(ShardRouter router) { router_ = std::move(router); }

  /// Start the alternating session/downtime schedule for every peer.
  void start();

  /// Pause churn: cancel every outstanding scheduled transition. Peers keep
  /// their current online/offline state; no further hooks fire until
  /// restart(). Cancelling (rather than letting stale events no-op) keeps
  /// pause/resume deterministic — the event queue holds no churn events at
  /// all while stopped, so an intervening run drains identically whether or
  /// not churn ever existed.
  void stop();

  /// Resume churn after stop(): re-schedule a transition for every peer from
  /// its current state. Fresh durations are drawn from the driver's own rng
  /// stream, so a stop()/restart() pair is itself deterministic under the
  /// same seed. No-op while running. Held peers (see hold_offline) stay held.
  void restart();

  /// Fault-crash authority: force `peer_index` offline in the driver's
  /// bookkeeping, cancel its pending transition, and schedule nothing more
  /// for it until release(). The caller (a FaultPlan's crash hook) owns the
  /// node-level action — the driver only guarantees churn cannot revive the
  /// node while it is held. Without this, a churn transition landing between
  /// a plan's crash and restart times brought the node back early
  /// (last-writer-wins); fault crashes are authoritative now.
  void hold_offline(std::size_t peer_index);

  /// Release a fault hold. `online_now` reports the node's post-restart
  /// state (a plan's restart hook usually brings it straight back up): the
  /// driver adopts it without invoking a hook — the restart hook already
  /// acted on the node — and resumes the alternating schedule from that
  /// state. No-op unless held.
  void release(std::size_t peer_index, bool online_now);

  bool held(std::size_t peer_index) const { return held_[peer_index] != 0; }

  bool is_online(std::size_t peer_index) const {
    return online_[peer_index] != 0;
  }
  std::size_t online_count() const {
    return online_count_.load(std::memory_order_relaxed);
  }
  bool stopped() const { return stopped_; }

 private:
  void schedule_next(std::size_t peer_index);
  void transition(std::size_t peer_index);

  sim::Simulator& sim_;
  ChurnConfig config_;
  Hook go_online_;
  Hook go_offline_;
  sim::Rng rng_;
  ShardRouter router_;               // empty => legacy single-kernel mode
  std::vector<sim::Rng> peer_rngs_;  // per-peer streams (router mode only)
  // Bytes, not vector<bool>: adjacent peers transition on different shards,
  // and bit-packing would make those writes share a byte (a data race).
  std::vector<std::uint8_t> online_;
  std::vector<std::uint8_t> held_;  // fault-crashed: churn suspended
  std::vector<sim::EventHandle> pending_;  // per-peer outstanding transition
  std::atomic<std::size_t> online_count_{0};
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace decentnet::net
