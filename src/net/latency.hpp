// Propagation-latency models for the simulated network.
//
// The paper's arguments hinge on wide-area latency (block propagation, DHT
// hops) versus datacenter latency (VISA-style partitioned backends), so the
// model is pluggable per Network instance.
#pragma once

#include <unordered_map>
#include <utility>

#include "net/node_id.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace decentnet::net {

class LatencyModel {
 public:
  virtual ~LatencyModel() = default;
  /// One-way propagation delay from `a` to `b` for a single message.
  virtual sim::SimDuration sample(NodeId a, NodeId b, sim::Rng& rng) = 0;
  /// Hard lower bound on sample() over all node pairs — the conservative
  /// lookahead the sharded kernel may run ahead without a barrier (messages
  /// can never arrive sooner than this). Models that cannot promise a
  /// positive bound return 0, which forces the kernel's degenerate
  /// sequential fallback rather than an unsound window.
  virtual sim::SimDuration min_latency() const { return 0; }
};

/// Fixed one-way delay (datacenter-style or unit-test determinism).
class ConstantLatency final : public LatencyModel {
 public:
  explicit ConstantLatency(sim::SimDuration delay) : delay_(delay) {}
  sim::SimDuration sample(NodeId, NodeId, sim::Rng&) override { return delay_; }
  sim::SimDuration min_latency() const override { return delay_; }

 private:
  sim::SimDuration delay_;
};

/// Uniform in [lo, hi].
class UniformLatency final : public LatencyModel {
 public:
  UniformLatency(sim::SimDuration lo, sim::SimDuration hi) : lo_(lo), hi_(hi) {}
  sim::SimDuration sample(NodeId, NodeId, sim::Rng& rng) override {
    return rng.uniform_int(lo_, hi_);
  }
  sim::SimDuration min_latency() const override { return lo_; }

 private:
  sim::SimDuration lo_, hi_;
};

/// Log-normal delay with a floor — a common fit for Internet RTT samples.
class LogNormalLatency final : public LatencyModel {
 public:
  /// `median` and `sigma` parameterize exp(N(ln median, sigma)); `floor` is
  /// the minimum physically possible delay.
  LogNormalLatency(sim::SimDuration median, double sigma,
                   sim::SimDuration floor = sim::millis(1));
  sim::SimDuration sample(NodeId, NodeId, sim::Rng& rng) override;
  sim::SimDuration min_latency() const override { return floor_; }

 private:
  double mu_;
  double sigma_;
  sim::SimDuration floor_;
};

/// Region-based wide-area model: nodes are assigned to geographic regions and
/// delay is drawn around a per-region-pair base RTT/2 with multiplicative
/// jitter. Default matrix approximates {NA, EU, ASIA, SA, OC}.
class GeoLatency final : public LatencyModel {
 public:
  static constexpr std::size_t kRegions = 5;

  /// `jitter_sigma` is the sigma of the log-normal multiplicative jitter.
  explicit GeoLatency(double jitter_sigma = 0.25);

  /// Assign a node to a region (0..kRegions-1). Unassigned nodes get a
  /// region derived deterministically from their id.
  void assign(NodeId node, std::size_t region);

  /// Override a base one-way delay between two regions (symmetric).
  void set_base(std::size_t r1, std::size_t r2, sim::SimDuration base);

  std::size_t region_of(NodeId node) const;

  sim::SimDuration sample(NodeId a, NodeId b, sim::Rng& rng) override;

 private:
  double jitter_sigma_;
  sim::SimDuration base_[kRegions][kRegions];
  std::unordered_map<NodeId, std::size_t, NodeIdHasher> assigned_;
};

}  // namespace decentnet::net
