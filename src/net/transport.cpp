#include "net/transport.hpp"

#include <algorithm>
#include <limits>

namespace decentnet::net {

const char* transport_mode_name(TransportMode mode) {
  switch (mode) {
    case TransportMode::Latency:
      return "latency";
    case TransportMode::Bandwidth:
      return "bandwidth";
    case TransportMode::Tcp:
      return "tcp";
  }
  return "unknown";
}

std::optional<TransportMode> transport_mode_from_name(std::string_view name) {
  if (name == "latency") return TransportMode::Latency;
  if (name == "bandwidth") return TransportMode::Bandwidth;
  if (name == "tcp") return TransportMode::Tcp;
  return std::nullopt;
}

std::optional<std::string> TransportConfig::validate() const {
  if (!(link.up_bps > 0)) {
    return "TransportConfig::link.up_bps must be > 0 (bytes per second), got " +
           std::to_string(link.up_bps);
  }
  if (!(link.down_bps > 0)) {
    return "TransportConfig::link.down_bps must be > 0 (bytes per second), "
           "got " +
           std::to_string(link.down_bps);
  }
  if (mode == TransportMode::Tcp) {
    if (mss_bytes == 0) {
      return "TransportConfig::mss_bytes must be > 0 in Tcp mode";
    }
    if (!(initial_cwnd_mss > 0)) {
      return "TransportConfig::initial_cwnd_mss must be > 0 in Tcp mode, "
             "got " +
             std::to_string(initial_cwnd_mss);
    }
    if (rtt <= 0) {
      return "TransportConfig::rtt must be > 0 in Tcp mode, got " +
             std::to_string(rtt) + "us";
    }
  }
  return std::nullopt;
}

void Transport::set_link(std::uint32_t idx, const LinkSpec& spec) {
  if (idx == kNoIndex) return;
  if (idx >= spec_.size()) {
    // Materialize the whole override array at the defaults the first time
    // any node deviates; reads past the end keep meaning "default".
    spec_.resize(static_cast<std::size_t>(idx) + 1, cfg_.link);
  }
  spec_[idx] = spec;
  if (active() && idx >= tx_.size()) grow(idx);
}

void Transport::reserve(std::size_t n) {
  if (n == 0) return;
  if (active()) tx_.reserve(n);
  if (!spec_.empty()) spec_.reserve(n);
}

void Transport::grow(std::uint32_t idx) {
  tx_.resize(static_cast<std::size_t>(idx) + 1);
}

double Transport::ssthresh_bytes(std::uint32_t idx) const {
  if (idx >= tx_.size() || tx_[idx].cwnd <= 0) {
    return std::numeric_limits<double>::infinity();
  }
  return tx_[idx].ssthresh;
}

Transport::Sample Transport::sample(sim::SimTime now) const {
  Sample out;
  const double rtt_s = sim::to_seconds(cfg_.rtt);
  for (std::uint32_t i = 0; i < tx_.size(); ++i) {
    const TxState& tx = tx_[i];
    if (tx.cwnd > 0) {
      out.cwnd_total += tx.cwnd;
      if (tx.cwnd > out.cwnd_max) out.cwnd_max = tx.cwnd;
    }
    if (tx.free_at > now) {
      ++out.busy_uplinks;
      const LinkSpec spec = link(i);
      double rate = spec.up_bps;
      if (cfg_.mode == TransportMode::Tcp && tx.cwnd > 0) {
        rate = std::min(spec.up_bps, tx.cwnd / rtt_s);
      }
      out.queued_bytes += sim::to_seconds(tx.free_at - now) * rate;
    }
  }
  return out;
}

double Transport::send_rate(const LinkSpec& spec, TxState& tx) const {
  if (cfg_.mode != TransportMode::Tcp) return spec.up_bps;
  if (tx.cwnd <= 0) {
    // First send from this node: open the flow at the initial window with
    // an effectively-unbounded slow-start threshold.
    tx.cwnd = cfg_.initial_cwnd_mss * static_cast<double>(cfg_.mss_bytes);
    tx.ssthresh = std::numeric_limits<double>::infinity();
  }
  const double rtt_s = sim::to_seconds(cfg_.rtt);
  return std::min(spec.up_bps, tx.cwnd / rtt_s);
}

Transport::Outcome Transport::admit(std::uint32_t from, std::uint32_t to,
                                    std::uint64_t size_bytes,
                                    sim::SimTime now) {
  Outcome out;
  out.depart = now;
  if (size_bytes == 0) return out;  // control messages serialize for free

  // Receiver-side downlink serialization is stateless: computed from the
  // receiver's spec alone, so a sender's shard never mutates receiver state.
  {
    const LinkSpec rx = link(to);
    out.rx_serialize = static_cast<sim::SimDuration>(
        static_cast<double>(size_bytes) / rx.down_bps *
        static_cast<double>(sim::kSecond));
  }

  if (from == kNoIndex) return out;  // unknown sender: infinite uplink
  if (from >= tx_.size()) grow(from);
  const LinkSpec spec = link(from);
  TxState& tx = tx_[from];
  const double rate = send_rate(spec, tx);
  const double mss = static_cast<double>(cfg_.mss_bytes);

  // Backlog already committed to the uplink, in bytes: busy time ahead of
  // `now` times the current effective rate. (Under Tcp the historical bytes
  // were committed at possibly different rates; busy-time * current-rate is
  // the deterministic first-order estimate.)
  if (spec.queue_bytes > 0) {
    const sim::SimDuration busy = tx.free_at > now ? tx.free_at - now : 0;
    const double backlog = sim::to_seconds(busy) * rate;
    if (backlog + static_cast<double>(size_bytes) >
        static_cast<double>(spec.queue_bytes)) {
      out.dropped = true;
      if (cfg_.mode == TransportMode::Tcp && tx.cwnd > 0) {
        // Loss signal: multiplicative decrease, floor of two segments.
        tx.ssthresh = std::max(tx.cwnd / 2.0, 2.0 * mss);
        tx.cwnd = tx.ssthresh;
      }
      return out;
    }
  }

  const sim::SimTime start = std::max(now, tx.free_at);
  const auto serialize = static_cast<sim::SimDuration>(
      static_cast<double>(size_bytes) / rate *
      static_cast<double>(sim::kSecond));
  tx.free_at = start + serialize;
  out.depart = tx.free_at;
  out.queue_wait = start - now;

  if (cfg_.mode == TransportMode::Tcp) {
    // Growth per delivered burst: slow start adds the burst size (doubling
    // per window's worth of traffic), congestion avoidance adds ~one MSS
    // per cwnd's worth (AIMD additive increase).
    if (tx.cwnd < tx.ssthresh) {
      tx.cwnd += static_cast<double>(size_bytes);
    } else {
      tx.cwnd += mss * static_cast<double>(size_bytes) / tx.cwnd;
    }
  }
  return out;
}

}  // namespace decentnet::net
