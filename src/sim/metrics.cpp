#include "sim/metrics.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <sstream>

namespace decentnet::sim {

Histogram::Histogram(std::size_t max_samples, std::uint64_t reservoir_seed)
    : max_samples_(max_samples), reservoir_rng_(reservoir_seed) {}

void Histogram::record(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  sum_sq_ += value * value;
  if (samples_.size() < max_samples_) {
    samples_.push_back(value);
    sorted_ = false;
  } else {
    // Reservoir sampling: keep each of the `count_` samples with equal
    // probability max_samples_/count_.
    const std::uint64_t j = reservoir_rng_.uniform_int(count_);
    if (j < max_samples_) {
      samples_[static_cast<std::size_t>(j)] = value;
      sorted_ = false;
    }
  }
}

double Histogram::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double Histogram::stddev() const {
  if (count_ < 2) return 0.0;
  const double n = static_cast<double>(count_);
  const double var = (sum_sq_ - sum_ * sum_ / n) / (n - 1);
  return var > 0 ? std::sqrt(var) : 0.0;
}

double Histogram::min() const { return count_ == 0 ? 0.0 : min_; }
double Histogram::max() const { return count_ == 0 ? 0.0 : max_; }

void Histogram::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Histogram::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  p = std::clamp(p, 0.0, 100.0);
  // Linear interpolation between closest ranks.
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1 - frac) + samples_[hi] * frac;
}

double Histogram::fraction_below(double threshold) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const auto it =
      std::upper_bound(samples_.begin(), samples_.end(), threshold);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  // `seen` tracks the effective sample-stream length so downsampling keeps
  // reservoir semantics when the pool is already full.
  std::uint64_t seen = count_;
  for (const double v : other.samples_) {
    ++seen;
    if (samples_.size() < max_samples_) {
      samples_.push_back(v);
      sorted_ = false;
    } else {
      const std::uint64_t j = reservoir_rng_.uniform_int(seen);
      if (j < max_samples_) {
        samples_[static_cast<std::size_t>(j)] = v;
        sorted_ = false;
      }
    }
  }
  count_ += other.count_;
  sum_ += other.sum_;
  sum_sq_ += other.sum_sq_;
}

void Histogram::clear() {
  count_ = 0;
  sum_ = sum_sq_ = min_ = max_ = 0;
  samples_.clear();
  sorted_ = true;
}

Counter& MetricRegistry::counter(std::string_view name) {
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  return counters_.emplace(std::string(name), Counter{}).first->second;
}

Histogram& MetricRegistry::histogram(std::string_view name,
                                     std::size_t max_samples) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.emplace(std::string(name), Histogram(max_samples))
      .first->second;
}

void MetricRegistry::merge_from(const MetricRegistry& other) {
  for (const auto& [name, c] : other.counters_) {
    counter(name).add(c.value());
  }
  for (const auto& [name, h] : other.histograms_) {
    histogram(name, h.max_samples()).merge(h);
  }
}

std::string MetricRegistry::summary() const {
  std::ostringstream os;
  for (const auto& [name, c] : counters_) {
    os << name << ": " << c.value() << '\n';
  }
  for (const auto& [name, h] : histograms_) {
    os << name << ": n=" << h.count() << " mean=" << h.mean()
       << " p50=" << h.percentile(50) << " p99=" << h.percentile(99) << '\n';
  }
  return os.str();
}

namespace {

// Shortest round-trip double rendering (locale-free, deterministic).
std::string json_double(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, res.ptr);
}

}  // namespace

std::string MetricRegistry::to_json() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += name;  // scoped names contain no characters needing escapes
    out += "\":";
    out += std::to_string(c.value());
  }
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += name;
    out += "\":{\"count\":";
    out += std::to_string(h.count());
    out += ",\"mean\":";
    out += json_double(h.mean());
    out += ",\"p50\":";
    out += json_double(h.percentile(50));
    out += ",\"p90\":";
    out += json_double(h.percentile(90));
    out += ",\"p99\":";
    out += json_double(h.percentile(99));
    out += ",\"max\":";
    out += json_double(h.max());
    out += '}';
  }
  out += '}';
  return out;
}

}  // namespace decentnet::sim
