// Minimal recursive-descent JSON reader for the repo's declarative inputs
// (FaultPlan repro files, ChaosSpace descriptions). Deliberately small: it
// parses the subset the serializers in this repo emit — objects, arrays,
// strings, numbers, booleans, null — into one tagged value tree, and every
// error carries the byte offset plus what was expected, so a hand-edited
// repro file fails with an actionable message rather than a silent default.
//
// Writing stays with the callers (each serializer emits a fixed key order so
// round-trips are byte-stable); this header only standardizes reading and
// the shortest-round-trip double formatting both sides share.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace decentnet::sim::jsonlite {

/// One parsed JSON value. Object members keep document order.
struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0;
  // Exact payload for integral literals: doubles lose precision above 2^53,
  // which would corrupt uint64 chaos seeds in repro files. `negative` holds
  // the sign, `magnitude` the absolute value.
  bool is_integer = false;
  bool negative = false;
  std::uint64_t magnitude = 0;
  std::string str;
  std::vector<JsonValue> items;                            // Array
  std::vector<std::pair<std::string, JsonValue>> members;  // Object

  /// Member lookup (Object only); nullptr when absent.
  const JsonValue* find(std::string_view key) const;

  /// Member lookup that throws std::invalid_argument naming `context` and
  /// the missing key.
  const JsonValue& at(std::string_view key, std::string_view context) const;

  /// Typed coercions; throw std::invalid_argument naming `context` on a
  /// kind mismatch (e.g. "fault plan event 3: 'at' must be a number").
  double as_number(std::string_view context) const;
  std::int64_t as_int(std::string_view context) const;
  std::uint64_t as_uint(std::string_view context) const;
  bool as_bool(std::string_view context) const;
  const std::string& as_string(std::string_view context) const;
  const std::vector<JsonValue>& as_array(std::string_view context) const;
  const std::vector<std::pair<std::string, JsonValue>>& as_object(
      std::string_view context) const;

  const char* kind_name() const;
};

/// Parse one complete JSON document. Throws std::invalid_argument with the
/// byte offset and expectation on malformed input or trailing garbage.
JsonValue parse(std::string_view text);

/// Shortest-round-trip double formatting (matches the experiment artifact
/// writer): integers render without exponent noise, and parse(format(x))
/// re-formats to the same bytes — the property the plan round-trip tests pin.
std::string format_double(double v);

}  // namespace decentnet::sim::jsonlite
