// Sharded discrete-event kernel: conservative-lookahead parallel execution.
//
// A ShardedKernel owns S independent Simulator shards — each with its own
// slab arena, free list, 4-ary heap, and RNG stream — plus the deterministic
// machinery that lets them run concurrently without breaking the repo's
// byte-for-byte reproducibility contract (Shadow's worker/scheduler design,
// adapted to this kernel):
//
//   * Hosts are assigned to shards by key (NodeId % S). Everything a host
//     does — its timers, its local deliveries — stays on its own shard.
//   * Cross-shard sends go through per-(src, dst) mailboxes. A mailbox is
//     single-writer (only the source shard's worker appends), so the
//     parallel phase needs no locks on the message path.
//   * Execution proceeds in windows of width W = the lookahead (the minimum
//     cross-shard link latency, provided by Network): every shard may run
//     [t, t + W) independently because no cross-shard message sent inside
//     the window can arrive inside it. At the window barrier the mailboxes
//     are drained into the destination heaps in a canonical order —
//     (arrival time, source shard, source emission order) — so heap
//     sequence numbers, and therefore FIFO tie-breaks, are a pure function
//     of the seed, never of thread scheduling.
//
// Determinism contract: the shard decomposition (shard count, per-shard
// seeds, mailbox drain order, trace merge order) is fixed by configuration.
// The worker-thread count only decides how many shards execute their
// (already independent) windows concurrently, so traces, metrics, and bench
// artifacts are byte-identical at any --sim-threads value; threads == 1 runs
// the shards sequentially in shard order on the caller's thread and is the
// reference schedule. A single-shard kernel (S == 1) bypasses every barrier
// and is bit-for-bit the legacy sequential kernel.
//
// Tracing: with S > 1, each shard's records are buffered locally during the
// window and merged into the real sink at the barrier, ordered by
// (time, shard, per-shard emission index) — canonical, not arrival order.
//
// Zero-lookahead fallback: a degenerate window (lookahead <= 0, e.g. a
// latency model whose minimum delay is 0) cannot overlap any execution, so
// the kernel falls back to sequential single-threaded stepping (window
// width 1 tick) and emits one "warn" trace record; results stay correct and
// deterministic, just without parallelism.
//
// Teardown: clear() clears every shard and drops undelivered mailbox
// parcels. Outstanding EventHandles — including handles held across shards —
// read invalid afterwards, exactly per the single-shard slot+generation
// contract (each handle points into its own shard's arena, whose generations
// clear() bumps).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "sim/metrics.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"
#include "sim/trace.hpp"

namespace decentnet::sim {

class Profiler;
class Telemetry;

namespace detail {
/// Shard index of the shard currently executing on this thread; only
/// meaningful inside a window (Network's sharded delivery path reads it to
/// find the sending shard's context). 0 outside any window, which makes the
/// single-shard and setup paths read shard 0 — the right answer.
inline thread_local std::uint32_t t_current_shard = 0;
}  // namespace detail

class ShardedKernel {
 public:
  using Callback = Simulator::Callback;

  /// Shard 0 is seeded with `seed` itself, so a 1-shard kernel reproduces a
  /// plain Simulator(seed) exactly; shards s > 0 get decorrelated splitmix
  /// streams of (seed, s).
  explicit ShardedKernel(std::uint64_t seed, std::size_t shards);
  ~ShardedKernel();

  ShardedKernel(const ShardedKernel&) = delete;
  ShardedKernel& operator=(const ShardedKernel&) = delete;

  std::size_t shard_count() const { return shards_.size(); }
  /// Deterministic host-to-shard assignment (dense NodeIds round-robin).
  std::size_t shard_of(std::uint64_t key) const {
    return key % shards_.size();
  }
  Simulator& shard(std::size_t s) { return *shards_[s]; }
  const Simulator& shard(std::size_t s) const { return *shards_[s]; }
  Simulator& sim_for(std::uint64_t key) { return *shards_[shard_of(key)]; }

  /// Shard executing on the calling thread (see detail::t_current_shard).
  static std::uint32_t current_shard() { return detail::t_current_shard; }

  /// Per-shard metric registry: components owned by shard s record here so
  /// the parallel phase never contends on counters. Fold into an
  /// experiment's registry afterwards with merge_metrics_into() (shard-index
  /// order — deterministic).
  MetricRegistry& metrics(std::size_t s) { return registries_[s]; }
  void merge_metrics_into(MetricRegistry& target);

  /// Install the real trace sink. With S == 1 it goes straight onto the
  /// shard; otherwise each shard traces into a local buffer merged at every
  /// barrier in (time, shard, emission-index) order. Borrowed, may be null.
  void set_trace(TraceSink* sink);
  TraceSink* trace() const { return trace_target_; }

  /// Bounded-memory tracing for S > 1: instead of buffering whole windows
  /// in memory, each shard streams its records to a private spill file
  /// (`prefix` + ".shard<k>") in fixed-size chunks during execution, and
  /// run_until() k-way merges the spills into the real sink by
  /// (window epoch, time, shard) at its finalize step. Each frame is
  /// stamped with the barrier batch it would have flushed in, so the merge
  /// reproduces the concatenation of the per-barrier buffered sorts
  /// byte-identically — the property the streaming trace tests pin. (Time
  /// alone is not a sufficient key: parcels drained at a barrier emit sched
  /// records at the previous window's stop time but flush one batch
  /// later.) Trace memory becomes O(shards * chunk) instead of O(records
  /// per window). Requires every record's kind/tag to outlive the run
  /// (true for the kernel/Network literals and interned tags). Empty
  /// prefix (default) restores in-memory buffering; a 1-shard kernel
  /// ignores the spill (its sink is already unbuffered).
  void set_trace_spill(std::string prefix);

  /// Install the target profiler (borrowed, may be null). With S > 1 each
  /// shard gets a private Profiler, merged into the target in shard order at
  /// the end of every run_until(); the target additionally gains per-shard
  /// "shard/<s>" wall-time entries so load imbalance shows up in --profile.
  void set_profiler(Profiler* profiler);

  /// Install (or clear, with nullptr) sim-time telemetry. With S == 1 the
  /// telemetry attaches straight to the shard (sampled between events, as a
  /// plain Simulator). With S > 1 the *driver* samples at barrier windows
  /// while workers are quiescent — per-shard series (kernel backlog, mailbox
  /// occupancy, fired/stall rates) are registered here and every cadence
  /// boundary a barrier crosses is emitted, so series bytes depend only on
  /// the shard decomposition, never on --sim-threads (the trace contract).
  /// Telemetry never schedules kernel events: golden traces are untouched.
  void set_telemetry(Telemetry* telemetry);

  /// Conservative lookahead window (Network::enable_sharding sets this to
  /// the latency model's minimum cross-shard delay). <= 0 triggers the
  /// degenerate sequential fallback.
  void set_lookahead(SimDuration window) { lookahead_ = window; }
  SimDuration lookahead() const { return lookahead_; }
  bool degenerate() const { return shards_.size() > 1 && lookahead_ <= 0; }

  /// Enqueue a callback onto another shard's timeline. Single-writer: legal
  /// from the currently executing shard's worker (src = current_shard()) or
  /// from the driver thread outside a window. The parcel is drained into
  /// `dst_shard` at the next barrier in canonical (when, src, FIFO) order.
  /// `when` must be >= the sender's now + lookahead (Network guarantees this
  /// by construction; the kernel clamps late parcels to the drain time).
  void post_cross(std::size_t dst_shard, SimTime when, Callback fn,
                  const char* tag = nullptr);

  /// Run every shard up to `until` (events at exactly `until` execute) on
  /// `threads` workers (clamped to the shard count; <= 1, or a degenerate
  /// window, runs shards sequentially on the caller's thread). Returns the
  /// number of events fired across all shards. Repeated calls continue from
  /// the previous horizon, like Simulator::run_until.
  std::size_t run_until(SimTime until, std::size_t threads = 1);

  /// Clear every shard (invalidating all outstanding EventHandles on every
  /// shard, per the slot+generation contract) and drop undrained mailbox
  /// parcels.
  void clear();

  std::size_t pending_events() const;
  std::uint64_t total_events_processed() const;

  /// Windows executed by the last run_until() (1 for S == 1). Deterministic.
  std::uint64_t windows_run() const { return windows_run_; }

 private:
  /// One cross-shard callback waiting for the next barrier.
  struct Parcel {
    SimTime when;
    const char* tag;
    Callback fn;
  };

  /// Per-shard trace buffer; drained and merged at barriers.
  class BufferSink final : public TraceSink {
   public:
    void record(const TraceRecord& rec) override { records_.push_back(rec); }
    std::vector<TraceRecord> records_;
  };

  /// Per-shard spill file: raw TraceRecord frames written through a small
  /// bounded buffer, read back for the finalize merge. Records hold
  /// kind/tag as pointers; spills are process-private temporaries consumed
  /// in the same process, so the pointers round-trip safely (and the file
  /// is deleted on teardown). Single-writer: only the owning shard's worker
  /// records during a window; the driver thread reads between runs.
  class SpillSink;

  /// Deterministic per-shard bookkeeping surfaced as sim/shard/<s>/*
  /// metrics: fired events, windows, stalls (windows where the shard had
  /// nothing to do — the load-imbalance signal), mailbox traffic.
  struct ShardStats {
    Counter* fired = nullptr;
    Counter* windows = nullptr;
    Counter* stalls = nullptr;
    Counter* mail_in = nullptr;
    Counter* mail_out = nullptr;
  };

  struct Pool;

  std::vector<Parcel>& mailbox(std::size_t src, std::size_t dst) {
    return mail_[src * shards_.size() + dst];
  }
  void run_shard_window(std::size_t s, SimTime stop);
  SimTime earliest_event() const;
  void drain_mailboxes();
  void flush_traces();
  void merge_spills();
  void run_windows(SimTime stop, std::size_t threads);
  void finish_run_profile();

  SimDuration lookahead_ = 0;
  std::vector<std::unique_ptr<Simulator>> shards_;
  std::deque<MetricRegistry> registries_;  // deque: stable handle addresses
  std::vector<ShardStats> stats_;
  std::vector<std::vector<Parcel>> mail_;  // [src * S + dst]
  std::vector<std::unique_ptr<BufferSink>> sinks_;
  std::vector<std::unique_ptr<SpillSink>> spills_;
  std::string spill_prefix_;
  TraceSink* trace_target_ = nullptr;
  Profiler* profile_target_ = nullptr;
  Telemetry* telemetry_ = nullptr;  // S > 1 only; S == 1 attaches the shard
  std::vector<std::unique_ptr<Profiler>> shard_profilers_;
  // Per-window scratch, reused across barriers.
  std::vector<std::size_t> fired_in_window_;
  std::vector<std::uint64_t> wall_ns_;
  std::uint64_t windows_run_ = 0;
  bool warned_degenerate_ = false;
  std::unique_ptr<Pool> pool_;
};

}  // namespace decentnet::sim
