// Deterministic chaos engine: fuzz protocols with randomized-but-seeded
// fault plans, judge each run with safety invariants plus liveness oracles,
// and shrink any failure to a minimal reproducer.
//
// The paper argues decentralized protocols are fragile precisely where
// hand-written fault scripts don't look: composed faults (a loss burst *and*
// a crash *inside* a partition), odd partition shapes, windows that overlap
// a recovery. The chaos engine explores that space mechanically:
//
//   1. A ChaosSpace declares ranges per fault family (how many partitions,
//      how long, which loss probabilities, ...). It is plain data, loadable
//      from JSON (--chaos-space FILE).
//   2. ChaosEngine::sample_plan(seed) draws a valid net::FaultPlan from the
//      space — same seed, same space ⇒ byte-identical plan, on any host.
//   3. A Scenario callback (one per protocol) builds the world, runs it
//      under the plan with an InvariantChecker armed (safety predicates +
//      invariants::eventually-style liveness oracles), and reports the first
//      violation, if any.
//   4. On failure, ChaosEngine::shrink delta-debugs the plan: greedy clause
//      removal to a fixpoint (crash+restart pairs move as one clause, so
//      shrinking never strands a crashed node), then per-window duration
//      halving. The result is a minimal plan that still trips the same
//      scenario, serialized as a ChaosRepro JSON envelope — the bug-report
//      currency: attach the file, replay with --repro FILE, byte-identical.
//
// Everything here is deterministic by construction: sampling uses the
// kernel Rng (counter-free), shrinking probes plans in a fixed order, and
// scenarios are required to be seed-pure (same plan + same seed ⇒ same
// verdict), which every sim-backed scenario already is.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "net/faults.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace decentnet::sim {

/// Inclusive range of doubles sampled uniformly. lo == hi pins the value.
struct ChaosRange {
  double lo = 0;
  double hi = 0;
};

/// Inclusive integer count range. {0, 0} disables the fault family.
struct ChaosCount {
  std::uint32_t lo = 0;
  std::uint32_t hi = 0;
};

/// Declarative description of the fault space one seed draws a plan from.
/// Defaults give a moderate mixed workload over a 5-minute horizon; loading
/// from JSON overrides any subset of fields (absent keys keep defaults).
struct ChaosSpace {
  /// Population size. Node network addresses are assumed to be the dense
  /// range [1, nodes] (Network::new_node_id allocates sequentially from 1)
  /// and plan node indices the dense range [0, nodes).
  std::size_t nodes = 16;
  /// Scenario length; every fault injects in [0.05, 0.6]·horizon and heals
  /// by 0.8·horizon, leaving a tail for the recovery oracles to pass in.
  SimDuration horizon = 300'000'000;  // 300 s

  ChaosCount partitions{0, 2};
  ChaosCount partition_groups{2, 3};  // groups per partition event
  ChaosRange partition_len_s{20, 120};

  ChaosCount crashes{0, 3};  // each crash gets a paired restart
  ChaosRange crash_len_s{10, 90};

  ChaosCount loss_bursts{0, 2};
  ChaosRange loss_p{0.05, 0.4};
  ChaosRange loss_len_s{5, 60};

  ChaosCount duplicate_windows{0, 1};
  ChaosRange duplicate_p{0.01, 0.2};
  ChaosRange duplicate_len_s{10, 90};

  ChaosCount reorder_windows{0, 1};
  ChaosRange reorder_jitter_ms{5, 200};
  ChaosRange reorder_len_s{10, 90};

  ChaosCount latency_faults{0, 2};
  ChaosRange latency_penalty_ms{20, 500};
  ChaosRange latency_len_s{10, 120};

  /// Parse a space from JSON: {"nodes": 16, "horizon_s": 600, and per-family
  /// objects like "crashes": {"count": [0, 3], "len_s": [10, 90]}}. Absent
  /// keys keep the built-in defaults; malformed values throw
  /// std::invalid_argument naming the key.
  static ChaosSpace from_json(std::string_view text);

  /// First structural problem with the space (empty population, inverted
  /// ranges, probabilities outside [0,1], horizon too short), or nullopt.
  std::optional<std::string> validate() const;
};

/// Scenario verdict: ok, or the first violation (invariant name + detail)
/// plus the recovery times the bench aggregates (seconds from last heal to
/// each oracle's satisfaction; empty when not measured).
struct ChaosOutcome {
  bool ok = true;
  std::string violation;
  std::vector<double> recovery_s;
};

/// One protocol under test: build the world, run it under `plan` with seed
/// `seed`, return the verdict. Must be seed-pure — the engine replays and
/// shrinks by re-invoking it with (plan', seed).
using ChaosScenario =
    std::function<ChaosOutcome(const net::FaultPlan& plan, std::uint64_t seed)>;

/// Minimal-repro envelope, serialized alongside the plan so a failure is
/// replayable from one file: protocol name, scenario seed, the violation
/// message observed, and the (shrunk) plan.
struct ChaosRepro {
  std::string protocol;
  std::uint64_t seed = 0;
  std::string violation;
  net::FaultPlan plan;

  std::string to_json() const;
  static ChaosRepro from_json(std::string_view text);
};

/// Shrink accounting, reported with the repro.
struct ShrinkStats {
  std::size_t initial_clauses = 0;
  std::size_t final_clauses = 0;
  std::size_t window_trims = 0;  // durations halved in phase 2
  std::size_t runs = 0;          // scenario invocations spent shrinking
};

struct ShrinkResult {
  net::FaultPlan plan;
  std::string violation;  // violation of the final minimal plan
  ShrinkStats stats;
};

/// The absolute sim time by which every fault in `plan` has injected and
/// healed — the anchor recovery oracles count their deadline from.
SimTime plan_quiesce_time(const net::FaultPlan& plan);

class ChaosEngine {
 public:
  /// Throws std::invalid_argument if `space` fails validate().
  explicit ChaosEngine(ChaosSpace space);

  const ChaosSpace& space() const { return space_; }

  /// Draw the plan for `seed`: deterministic, valid (passes
  /// FaultPlan::validate(space.nodes)), events sorted by inject time.
  net::FaultPlan sample_plan(std::uint64_t seed) const;

  /// Shrink a failing (plan, seed) against `scenario` to a locally minimal
  /// plan that still fails: greedy clause removal to a fixpoint, then
  /// duration halving per surviving window, bounded by `max_runs` scenario
  /// invocations. Deterministic: fixed probe order, no randomness.
  /// Precondition: scenario(plan, seed) fails; throws std::logic_error if
  /// it passes instead.
  ShrinkResult shrink(const net::FaultPlan& plan, std::uint64_t seed,
                      const ChaosScenario& scenario,
                      std::size_t max_runs = 400) const;

 private:
  ChaosSpace space_;
};

}  // namespace decentnet::sim
