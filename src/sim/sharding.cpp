// ShardedKernel implementation. Deliberately a separate translation unit
// from simulator.cpp (the PR 5 lesson): the windowed drain loop, the worker
// pool, and the mailbox merge never share a TU with the sequential kernel's
// hot paths, so single-shard codegen — and the golden traces pinned to it —
// stays bit-for-bit what it was before sharding existed.
#include "sim/sharding.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#include "sim/profiler.hpp"
#include "sim/rng.hpp"
#include "sim/telemetry.hpp"

namespace decentnet::sim {

// Raw-frame spill file (see the header comment). Fixed-size frames keep
// both the write path (memcpy into a bounded buffer) and the finalize merge
// (sequential block reads) trivial; no parsing, no per-record allocation.
// ~16K frames buffer to about 1 MB per shard.
//
// Each frame carries the window epoch it was emitted in. Plain (time,
// shard) is NOT a sufficient merge key: push_event stamps sched records
// with the emitting shard's clock, and a parcel drained at the barrier is
// scheduled while the destination still sits at the previous window's stop
// time — so its sched record shares a timestamp with the previous window
// but, in the buffered contract, flushes one batch later (after every
// same-time record of the old window, regardless of shard). Sorting by
// (epoch, time, shard) reproduces the concatenation of the per-barrier
// sorts exactly.
class ShardedKernel::SpillSink final : public TraceSink {
 public:
  /// One spilled record: the barrier batch it belongs to, then the record.
  struct Frame {
    std::uint64_t epoch;
    TraceRecord rec;
  };
  static constexpr std::size_t kBufFrames = 16384;

  explicit SpillSink(std::string path) : path_(std::move(path)) {
    file_ = std::fopen(path_.c_str(), "wb+");
    if (file_ == nullptr) {
      throw std::runtime_error("SpillSink: cannot open " + path_);
    }
    buf_.reserve(kBufFrames);
  }
  ~SpillSink() override {
    if (file_ != nullptr) std::fclose(file_);
    std::remove(path_.c_str());
  }

  void record(const TraceRecord& rec) override {
    buf_.push_back(Frame{epoch_, rec});
    if (buf_.size() >= kBufFrames) write_out();
  }

  /// Advance to the next barrier batch. Driver-only, called while workers
  /// are quiescent (the pool barrier orders the write against their reads).
  void bump_epoch() { ++epoch_; }

  /// Switch to reading: flush the tail chunk and rewind. Frames stay
  /// (epoch, time)-ordered — epochs only grow, and within one epoch the
  /// owning shard's clock never runs backwards.
  std::uint64_t begin_read() {
    write_out();
    std::rewind(file_);
    read_left_ = total_;
    rbuf_.clear();
    rpos_ = 0;
    return total_;
  }
  bool next(Frame& out) {
    if (rpos_ == rbuf_.size()) {
      if (read_left_ == 0) return false;
      const std::size_t n =
          static_cast<std::size_t>(std::min<std::uint64_t>(read_left_,
                                                           kBufFrames));
      rbuf_.resize(n);
      if (std::fread(rbuf_.data(), sizeof(Frame), n, file_) != n) {
        throw std::runtime_error("SpillSink: short read from " + path_);
      }
      read_left_ -= n;
      rpos_ = 0;
    }
    out = rbuf_[rpos_++];
    return true;
  }

  /// Truncate for the next run. The epoch keeps counting — monotonicity is
  /// all the merge needs, and carrying it across runs keeps between-run
  /// driver records ordered after everything already merged.
  void reset() {
    file_ = std::freopen(path_.c_str(), "wb+", file_);
    if (file_ == nullptr) {
      throw std::runtime_error("SpillSink: cannot reopen " + path_);
    }
    total_ = 0;
    rbuf_.clear();
    rpos_ = 0;
    read_left_ = 0;
  }

 private:
  void write_out() {
    if (buf_.empty()) return;
    if (std::fwrite(buf_.data(), sizeof(Frame), buf_.size(), file_) !=
        buf_.size()) {
      throw std::runtime_error("SpillSink: short write to " + path_);
    }
    total_ += buf_.size();
    buf_.clear();
  }

  std::string path_;
  std::FILE* file_ = nullptr;
  std::uint64_t epoch_ = 0;
  std::vector<Frame> buf_;
  std::uint64_t total_ = 0;
  std::vector<Frame> rbuf_;
  std::size_t rpos_ = 0;
  std::uint64_t read_left_ = 0;
};

namespace {

constexpr SimTime kNever = std::numeric_limits<SimTime>::max();

std::uint64_t shard_seed(std::uint64_t seed, std::size_t s) {
  // Shard 0 keeps the root seed so a 1-shard kernel *is* Simulator(seed);
  // the rest get decorrelated splitmix streams, mirroring seed_for().
  if (s == 0) return seed;
  std::uint64_t state =
      seed + 0x9E3779B97F4A7C15ull * (static_cast<std::uint64_t>(s) + 1);
  return splitmix64(state);
}

// Interned "shard/<s>" profiler tags with process lifetime. Profiler keys
// its table on the raw tag pointer and the harness profiler outlives any one
// kernel, so a kernel-owned std::string would dangle in the merged report
// (read back as garbage at to_json time). Interning once per shard index
// keeps the pointer stable forever; shard counts are tiny, so this never
// grows past a handful of entries.
const char* shard_wall_tag(std::size_t s) {
  static std::mutex mu;
  static std::vector<std::unique_ptr<std::string>> tags;
  std::lock_guard<std::mutex> lock(mu);
  while (tags.size() <= s) {
    tags.push_back(
        std::make_unique<std::string>("shard/" + std::to_string(tags.size())));
  }
  return tags[s]->c_str();
}

}  // namespace

/// One busy-poll step while waiting on another core. On x86/arm this is the
/// architectural spin hint; elsewhere it degrades to a scheduler yield.
inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#else
  std::this_thread::yield();
#endif
}

/// Persistent worker pool for N-thread windows: N-1 background helpers plus
/// the coordinator itself. One epoch per window: the coordinator publishes a
/// stop time and bumps the epoch (release), then *joins the claim loop* —
/// shards are claimed off a shared atomic counter, so the first thread
/// standing makes progress immediately and helper wake-up latency never
/// serializes a window (dynamic assignment is safe: shards are independent
/// within a window, so *which* thread runs a shard cannot affect results).
/// Windows are often only tens of microseconds of work, so helpers spin
/// briefly for the next epoch before falling back to a condvar sleep; the
/// spin is disabled outright on single-core hosts where it could only steal
/// the CPU from the thread doing the work. Happens-before edges: the
/// epoch bump (release) publishes the coordinator's drain writes to helpers
/// (acquire), and each helper's done++ (release) publishes its shard writes
/// back to the coordinator's done-wait (acquire).
struct ShardedKernel::Pool {
  explicit Pool(ShardedKernel& kernel, std::size_t threads)
      : kernel_(kernel) {
    const std::size_t helpers = threads - 1;  // coordinator participates
    workers_.reserve(helpers);
    for (std::size_t w = 0; w < helpers; ++w) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ~Pool() {
    quit_.store(true, std::memory_order_relaxed);
    epoch_.fetch_add(1, std::memory_order_release);
    {
      std::lock_guard<std::mutex> lock(m_);
      cv_start_.notify_all();
    }
    for (auto& t : workers_) t.join();
  }

  std::size_t size() const { return workers_.size() + 1; }

  void run_window(SimTime stop) {
    stop_ = stop;
    done_.store(0, std::memory_order_relaxed);
    next_shard_.store(0, std::memory_order_relaxed);
    epoch_.fetch_add(1, std::memory_order_release);
    {
      std::lock_guard<std::mutex> lock(m_);
      if (sleeping_ > 0) cv_start_.notify_all();
    }
    claim_loop(stop);
    std::size_t spins = 0;
    while (done_.load(std::memory_order_acquire) != workers_.size()) {
      if (spin_limit_ == 0 || ++spins > spin_limit_) {
        std::this_thread::yield();
      } else {
        cpu_relax();
      }
    }
  }

 private:
  void claim_loop(SimTime stop) {
    const std::size_t shard_total = kernel_.shards_.size();
    for (;;) {
      const std::size_t s =
          next_shard_.fetch_add(1, std::memory_order_relaxed);
      if (s >= shard_total) break;
      kernel_.run_shard_window(s, stop);
    }
  }

  void worker_loop() {
    std::uint64_t seen = 0;
    for (;;) {
      std::uint64_t e;
      std::size_t spins = 0;
      while ((e = epoch_.load(std::memory_order_acquire)) == seen) {
        if (spins < spin_limit_) {
          cpu_relax();
          ++spins;
          continue;
        }
        std::unique_lock<std::mutex> lock(m_);
        ++sleeping_;
        cv_start_.wait(lock, [&] {
          return epoch_.load(std::memory_order_acquire) != seen;
        });
        --sleeping_;
      }
      seen = e;
      if (quit_.load(std::memory_order_relaxed)) return;
      claim_loop(stop_);
      done_.fetch_add(1, std::memory_order_release);
    }
  }

  ShardedKernel& kernel_;
  std::vector<std::thread> workers_;
  std::mutex m_;                 // guards sleeping_ / condvar handshake only
  std::condition_variable cv_start_;
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::size_t> done_{0};
  std::atomic<std::size_t> next_shard_{0};
  std::atomic<bool> quit_{false};
  std::size_t sleeping_ = 0;  // guarded by m_
  SimTime stop_ = 0;          // published by the epoch bump
  const std::size_t spin_limit_ =
      std::thread::hardware_concurrency() > 1 ? 4096 : 0;
};

ShardedKernel::ShardedKernel(std::uint64_t seed, std::size_t shards) {
  if (shards == 0) shards = 1;
  shards_.reserve(shards);
  registries_.resize(shards);
  stats_.resize(shards);
  mail_.resize(shards * shards);
  fired_in_window_.resize(shards, 0);
  wall_ns_.resize(shards, 0);
  for (std::size_t s = 0; s < shards; ++s) {
    shards_.push_back(std::make_unique<Simulator>(shard_seed(seed, s)));
    const std::string prefix = "sim/shard/" + std::to_string(s);
    stats_[s].fired = &registries_[s].counter(prefix + "/fired");
    stats_[s].windows = &registries_[s].counter(prefix + "/windows");
    stats_[s].stalls = &registries_[s].counter(prefix + "/stalls");
    stats_[s].mail_in = &registries_[s].counter(prefix + "/mail_in");
    stats_[s].mail_out = &registries_[s].counter(prefix + "/mail_out");
  }
}

ShardedKernel::~ShardedKernel() = default;

void ShardedKernel::merge_metrics_into(MetricRegistry& target) {
  for (const MetricRegistry& reg : registries_) target.merge_from(reg);
}

void ShardedKernel::set_trace(TraceSink* sink) {
  trace_target_ = sink;
  if (shards_.size() == 1) {
    // No barriers, no buffering: the single shard is the legacy kernel.
    shards_[0]->set_trace(sink);
    return;
  }
  sinks_.clear();
  spills_.clear();
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (sink == nullptr) {
      shards_[s]->set_trace(nullptr);
    } else if (!spill_prefix_.empty()) {
      spills_.push_back(std::make_unique<SpillSink>(
          spill_prefix_ + ".shard" + std::to_string(s)));
      shards_[s]->set_trace(spills_.back().get());
    } else {
      sinks_.push_back(std::make_unique<BufferSink>());
      shards_[s]->set_trace(sinks_.back().get());
    }
  }
}

void ShardedKernel::set_trace_spill(std::string prefix) {
  spill_prefix_ = std::move(prefix);
  // Re-route the shards if a sink is already installed.
  if (trace_target_ != nullptr) set_trace(trace_target_);
}

void ShardedKernel::set_profiler(Profiler* profiler) {
  profile_target_ = profiler;
  if (shards_.size() == 1) {
    shards_[0]->set_profiler(profiler);
    return;
  }
  shard_profilers_.clear();
  for (auto& sh : shards_) {
    if (profiler != nullptr) {
      shard_profilers_.push_back(std::make_unique<Profiler>());
      sh->set_profiler(shard_profilers_.back().get());
    } else {
      sh->set_profiler(nullptr);
    }
  }
}

void ShardedKernel::set_telemetry(Telemetry* telemetry) {
  if (shards_.size() == 1) {
    // The single shard is the legacy kernel: sample between events there.
    if (telemetry != nullptr) {
      telemetry->attach(*shards_[0]);
    } else {
      shards_[0]->set_telemetry(nullptr);
    }
    telemetry_ = nullptr;
    return;
  }
  // S > 1: the driver samples at barriers, so the shards themselves stay
  // uninstrumented (their drain loops must not touch the sink from worker
  // threads).
  for (auto& sh : shards_) sh->set_telemetry(nullptr);
  telemetry_ = telemetry;
  if (telemetry == nullptr) return;
  telemetry->begin_run();
  for (std::uint32_t s = 0; s < shards_.size(); ++s) {
    Simulator* const sim = shards_[s].get();
    telemetry->add_gauge("kernel/backlog", s, [sim](SimTime) {
      return static_cast<double>(sim->pending_events());
    });
    // Outbound parcels emitted during the window, sampled pre-drain (the
    // next barrier iteration drains before running) — the cross-shard
    // pressure this shard generated.
    ShardedKernel* const self = this;
    const std::size_t src = s;
    telemetry->add_gauge("kernel/mailbox", s, [self, src](SimTime) {
      std::size_t n = 0;
      for (std::size_t d = 0; d < self->shards_.size(); ++d) {
        n += self->mailbox(src, d).size();
      }
      return static_cast<double>(n);
    });
    telemetry->add_rate("kernel/fired", s, *stats_[s].fired);
    telemetry->add_rate("kernel/stalls", s, *stats_[s].stalls);
    telemetry->add_rate("kernel/windows", s, *stats_[s].windows);
    telemetry->add_rate("kernel/mail_in", s, *stats_[s].mail_in);
  }
}

void ShardedKernel::post_cross(std::size_t dst_shard, SimTime when,
                               Callback fn, const char* tag) {
  if (shards_.size() == 1) {
    shards_[0]->post_at(when, std::move(fn), tag);
    return;
  }
  const std::size_t src = detail::t_current_shard;
  mailbox(src, dst_shard).push_back(Parcel{when, tag, std::move(fn)});
}

SimTime ShardedKernel::earliest_event() const {
  SimTime earliest = kNever;
  for (const auto& sh : shards_) {
    earliest = std::min(earliest, sh->next_event_time());
  }
  return earliest;
}

void ShardedKernel::drain_mailboxes() {
  const std::size_t shard_total = shards_.size();
  // Canonical drain: per destination, gather every source's parcels and
  // stable-sort by (arrival time, source shard); stability preserves each
  // source's emission (FIFO) order. post_at then hands out destination heap
  // sequence numbers in exactly that order — a pure function of the seed.
  struct Entry {
    SimTime when;
    std::size_t src;
    Parcel* parcel;
  };
  std::vector<Entry> order;
  for (std::size_t d = 0; d < shard_total; ++d) {
    order.clear();
    for (std::size_t s = 0; s < shard_total; ++s) {
      for (Parcel& p : mailbox(s, d)) order.push_back(Entry{p.when, s, &p});
    }
    if (order.empty()) continue;
    std::stable_sort(order.begin(), order.end(),
                     [](const Entry& a, const Entry& b) {
                       return a.when != b.when ? a.when < b.when
                                               : a.src < b.src;
                     });
    for (Entry& e : order) {
      stats_[e.src].mail_out->add();
      stats_[d].mail_in->add();
      shards_[d]->post_at(e.parcel->when, std::move(e.parcel->fn),
                          e.parcel->tag);
    }
    for (std::size_t s = 0; s < shard_total; ++s) mailbox(s, d).clear();
  }
}

void ShardedKernel::flush_traces() {
  if (trace_target_ == nullptr || sinks_.empty()) return;
  // Per-shard buffers are time-ordered already (a shard's clock never runs
  // backwards), so the canonical merged order is a stable sort by
  // (time, shard) — ties resolve to the lower shard, and each shard's
  // emission order survives stability.
  struct Entry {
    SimTime t;
    std::uint32_t shard;
    const TraceRecord* rec;
  };
  std::vector<Entry> order;
  for (std::uint32_t s = 0; s < sinks_.size(); ++s) {
    for (const TraceRecord& rec : sinks_[s]->records_) {
      order.push_back(Entry{rec.t, s, &rec});
    }
  }
  if (order.empty()) return;
  std::stable_sort(order.begin(), order.end(),
                   [](const Entry& a, const Entry& b) {
                     return a.t != b.t ? a.t < b.t : a.shard < b.shard;
                   });
  for (const Entry& e : order) trace_target_->record(*e.rec);
  for (auto& sink : sinks_) sink->records_.clear();
}

void ShardedKernel::merge_spills() {
  if (trace_target_ == nullptr || spills_.empty()) return;
  // k-way merge by (epoch, time, shard), preserving each spill's internal
  // order. The epoch is the barrier batch the record would have flushed in,
  // so this merge reproduces the concatenation of the per-barrier
  // (time, shard) stable sorts byte for byte — including the drain-time
  // sched records that share a timestamp with the previous window but
  // belong to the next batch (see the SpillSink comment).
  struct Head {
    SpillSink::Frame f;
    bool live = false;
  };
  std::vector<Head> heads(spills_.size());
  for (std::size_t s = 0; s < spills_.size(); ++s) {
    spills_[s]->begin_read();
    heads[s].live = spills_[s]->next(heads[s].f);
  }
  for (;;) {
    // Linear scan: shard counts are <= 64 and lower shard wins key ties.
    std::size_t best = heads.size();
    for (std::size_t s = 0; s < heads.size(); ++s) {
      if (!heads[s].live) continue;
      if (best == heads.size() ||
          heads[s].f.epoch < heads[best].f.epoch ||
          (heads[s].f.epoch == heads[best].f.epoch &&
           heads[s].f.rec.t < heads[best].f.rec.t)) {
        best = s;
      }
    }
    if (best == heads.size()) break;
    trace_target_->record(heads[best].f.rec);
    heads[best].live = spills_[best]->next(heads[best].f);
  }
  for (auto& spill : spills_) spill->reset();
}

void ShardedKernel::run_shard_window(std::size_t s, SimTime stop) {
  const std::uint32_t prev = detail::t_current_shard;
  detail::t_current_shard = static_cast<std::uint32_t>(s);
  const bool profiled = profile_target_ != nullptr;
  const std::uint64_t t0 = profiled ? Profiler::now_ns() : 0;
  fired_in_window_[s] = shards_[s]->run_until(stop);
  if (profiled) wall_ns_[s] += Profiler::now_ns() - t0;
  detail::t_current_shard = prev;
}

void ShardedKernel::run_windows(SimTime stop, std::size_t threads) {
  if (threads <= 1) {
    // Reference schedule: shard order on the caller's thread. The pooled
    // path below produces byte-identical results because shards are
    // independent within a window and every merge is canonical.
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      run_shard_window(s, stop);
    }
    return;
  }
  if (!pool_ || pool_->size() != threads) {
    pool_ = std::make_unique<Pool>(*this, threads);
  }
  pool_->run_window(stop);
}

void ShardedKernel::finish_run_profile() {
  if (profile_target_ == nullptr || shards_.size() == 1) return;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    profile_target_->merge_from(*shard_profilers_[s]);
    shard_profilers_[s]->clear();
    profile_target_->record(shard_wall_tag(s), wall_ns_[s]);
    wall_ns_[s] = 0;
  }
}

std::size_t ShardedKernel::run_until(SimTime until, std::size_t threads) {
  if (shards_.size() == 1) {
    windows_run_ = 1;
    return shards_[0]->run_until(until);
  }
  SimDuration window = lookahead_;
  if (window <= 0) {
    // Degenerate lookahead: no window can overlap any execution, so fall
    // back to sequential single-tick stepping. Correct and deterministic,
    // just not parallel — warn once so the misconfiguration is visible.
    window = 1;
    threads = 1;
    if (!warned_degenerate_ && trace_target_ != nullptr) {
      trace_target_->record({shards_[0]->now(), "warn",
                             "sharding/zero_lookahead", 0,
                             static_cast<std::uint64_t>(shards_.size()), 0,
                             0});
    }
    warned_degenerate_ = true;
  }
  if (threads > shards_.size()) threads = shards_.size();

  std::size_t fired_total = 0;
  std::uint64_t windows = 0;
  // Coordinator-phase attribution (profile-only): where the barrier loop
  // spends its sequential time, split from the shard/<s> in-window wall.
  const bool profiled = profile_target_ != nullptr;
  std::uint64_t drain_ns = 0, window_ns = 0, flush_ns = 0;
  for (;;) {
    // Mailboxes may hold parcels from the previous window (or from the
    // driver thread between runs); drain them before looking at the heaps.
    std::uint64_t t0 = profiled ? Profiler::now_ns() : 0;
    drain_mailboxes();
    if (profiled) drain_ns += Profiler::now_ns() - t0;
    const SimTime earliest = earliest_event();
    if (earliest == kNever || earliest > until) break;
    // Conservative window: no event fired in [earliest, stop] can cause
    // another shard's event at or before stop (cross-shard effects lag by
    // at least `window`), so every shard may run to `stop` independently.
    const SimTime stop =
        std::min(until, earliest + window - 1);
    if (profiled) t0 = Profiler::now_ns();
    run_windows(stop, threads);
    if (profiled) window_ns += Profiler::now_ns() - t0;
    ++windows;
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      fired_total += fired_in_window_[s];
      stats_[s].fired->add(fired_in_window_[s]);
      stats_[s].windows->add();
      if (fired_in_window_[s] == 0) stats_[s].stalls->add();
    }
    if (profiled) t0 = Profiler::now_ns();
    flush_traces();
    // Spill path's barrier analogue: close this window's batch so the
    // finalize merge keys the next window's records (including the scheds
    // the upcoming drain emits at this window's stop time) after it.
    for (auto& spill : spills_) spill->bump_epoch();
    if (profiled) flush_ns += Profiler::now_ns() - t0;
    // Telemetry samples on the driver thread while workers are quiescent.
    // The barrier schedule (the sequence of `stop` values) is a pure
    // function of the decomposition, so the emitted boundaries — and the
    // state they sample — never depend on the thread count.
    if (telemetry_ != nullptr && stop >= telemetry_->next_due()) {
      telemetry_->advance_to(stop);
    }
  }
  if (profiled) {
    profile_target_->record("kernel/drain", drain_ns);
    profile_target_->record("kernel/windows_wall", window_ns);
    profile_target_->record("kernel/trace_flush", flush_ns);
  }
  // Advance every shard's clock to the horizon (reclaiming any cancelled
  // heap tops on the way, as the sequential kernel does).
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    run_shard_window(s, until);
  }
  flush_traces();
  merge_spills();
  finish_run_profile();
  if (telemetry_ != nullptr) telemetry_->advance_to(until);
  windows_run_ = windows;
  return fired_total;
}

void ShardedKernel::clear() {
  for (auto& sh : shards_) sh->clear();
  for (auto& box : mail_) box.clear();
  for (auto& sink : sinks_) sink->records_.clear();
  for (auto& spill : spills_) spill->reset();
}

std::size_t ShardedKernel::pending_events() const {
  std::size_t n = 0;
  for (const auto& sh : shards_) n += sh->pending_events();
  for (const auto& box : mail_) n += box.size();
  return n;
}

std::uint64_t ShardedKernel::total_events_processed() const {
  std::uint64_t n = 0;
  for (const auto& sh : shards_) n += sh->total_events_processed();
  return n;
}

}  // namespace decentnet::sim
