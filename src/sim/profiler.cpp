#include "sim/profiler.hpp"

#include <chrono>

namespace decentnet::sim {

std::uint64_t Profiler::now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void Profiler::record(const char* tag, std::uint64_t elapsed_ns) {
  TagStats& s = slots_[tag];
  ++s.events;
  s.wall_ns += elapsed_ns;
}

void Profiler::merge_from(const Profiler& other) {
  for (const auto& [tag, stats] : other.slots_) {
    TagStats& s = slots_[tag];
    s.events += stats.events;
    s.wall_ns += stats.wall_ns;
  }
}

std::map<std::string, Profiler::TagStats> Profiler::by_tag() const {
  std::map<std::string, TagStats> out;
  for (const auto& [tag, stats] : slots_) {
    TagStats& s = out[tag != nullptr && *tag != '\0' ? tag : "(untagged)"];
    s.events += stats.events;
    s.wall_ns += stats.wall_ns;
  }
  return out;
}

std::map<std::string, Profiler::TagStats> Profiler::by_subsystem() const {
  std::map<std::string, TagStats> out;
  for (const auto& [name, stats] : by_tag()) {
    const std::size_t slash = name.find('/');
    TagStats& s =
        out[slash == std::string::npos ? name : name.substr(0, slash)];
    s.events += stats.events;
    s.wall_ns += stats.wall_ns;
  }
  return out;
}

Profiler::TagStats Profiler::total() const {
  TagStats t;
  for (const auto& [tag, stats] : slots_) {
    t.events += stats.events;
    t.wall_ns += stats.wall_ns;
  }
  return t;
}

namespace {

void append_stats_map(std::string& out,
                      const std::map<std::string, Profiler::TagStats>& m) {
  out += '{';
  bool first = true;
  for (const auto& [name, s] : m) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += name;  // tags are code literals: no characters needing escapes
    out += "\":{\"events\":";
    out += std::to_string(s.events);
    out += ",\"wall_ns\":";
    out += std::to_string(s.wall_ns);
    out += '}';
  }
  out += '}';
}

}  // namespace

std::string Profiler::to_json() const {
  const TagStats t = total();
  std::string out = "{\"total\":{\"events\":";
  out += std::to_string(t.events);
  out += ",\"wall_ns\":";
  out += std::to_string(t.wall_ns);
  out += "},\"subsystems\":";
  append_stats_map(out, by_subsystem());
  out += ",\"tags\":";
  append_stats_map(out, by_tag());
  out += '}';
  return out;
}

}  // namespace decentnet::sim
