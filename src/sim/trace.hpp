// Structured tracing for the simulation kernel (Shadow-style).
//
// A TraceSink receives a flat stream of TraceRecords from the Simulator
// (event scheduled / fired / cancelled) and from the Network (message send /
// drop, with the drop reason). Sinks are installed per-Simulator; with no
// sink installed the hot path pays a single null-pointer test. The JSONL
// sink writes one compact JSON object per record, so two runs from the same
// seed produce byte-identical trace files — the determinism contract the
// tests pin down.
#pragma once

#include <cstdint>
#include <fstream>
#include <ostream>
#include <string>

#include "sim/time.hpp"

namespace decentnet::sim {

/// One structured trace record. `kind` says which fields are meaningful
/// (alphabetical — keep it that way when adding kinds):
///
///   kind="cancel" — cancelled event surfaced (lazy): id=event seq
///   kind="drop"   — Network dropped a message: tag=reason ("partition",
///                   "unreachable", "loss", "offline"), id/a/b/bytes as send
///   kind="dup"    — Network duplicated a message (duplication window):
///                   id/a/b/bytes as send; emitted before the extra delivery
///                   is scheduled
///   kind="fault"  — FaultScheduler injected a fault: tag=fault type
///                   ("partition", "crash", "latency", ...), id=plan event
///                   index, a=target node index, b=heal time (us, 0=never)
///   kind="fire"   — event callback about to run: id=event seq
///   kind="heal"   — FaultScheduler healed a fault: fields as "fault"
///   kind="invariant" — InvariantChecker recorded a violation: tag=invariant
///                   name, id=kernel events processed (the trace position)
///   kind="sched"  — event pushed: id=event seq, a=fire time, tag=category
///   kind="send"   — Network accepted a message: id=msg seq, a=from, b=to,
///                   bytes=wire size
///   kind="span"   — causal hop allocated (span tracking on): id=hop id,
///                   a=tree root hop, b=parent hop (0 = root), bytes=tree
///                   depth, queue_us=sender-side queuing delay this hop
///                   waited behind earlier traffic (Bandwidth/Tcp transport;
///                   0 — and omitted from JSON — in Latency mode). tag="root"
///                   marks a virtual root opened by Network::new_span_root();
///                   otherwise the record follows its message's "send" record
///                   immediately (same send, matching msg seq)
///   kind="warn"   — kernel configuration warning, emitted once: tag=what
///                   ("sharding/zero_lookahead": degenerate lookahead forced
///                   the sharded kernel into sequential stepping; a=shard
///                   count)
///
/// `kind` and `tag` must point at string literals (or otherwise outlive the
/// sink call); records are emitted synchronously and never stored.
struct TraceRecord {
  SimTime t = 0;           // simulated time at emission
  const char* kind = "";   // record type, see above
  const char* tag = "";    // category / drop reason; may be empty
  std::uint64_t id = 0;    // event or message sequence number
  std::uint64_t a = 0;     // kind-specific
  std::uint64_t b = 0;     // kind-specific
  std::uint64_t bytes = 0; // payload size for net records
  std::uint64_t queue_us = 0;  // sender-side queuing delay ("span" records)
};

/// Receives trace records. Implementations must not re-enter the simulator.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void record(const TraceRecord& rec) = 0;
  virtual void flush() {}
};

/// Append `rec` to `out` as one JSONL line (including the trailing newline).
/// Every sink routes through this one formatter, so any two sinks fed the
/// same record stream produce byte-identical files — the property the
/// streaming-vs-buffered trace tests pin down.
void append_record_json(std::string& out, const TraceRecord& rec);

/// Writes one JSON object per line ("JSON Lines"). Output is a pure function
/// of the record stream: no wall-clock, no pointers, no locale dependence.
class JsonlTraceSink final : public TraceSink {
 public:
  /// Open `path` for writing (truncates). Throws std::runtime_error when the
  /// file cannot be opened.
  explicit JsonlTraceSink(const std::string& path);
  /// Write to an externally owned stream (tests).
  explicit JsonlTraceSink(std::ostream& os);
  ~JsonlTraceSink() override;

  void record(const TraceRecord& rec) override;
  void flush() override;

  std::uint64_t records_written() const { return written_; }

 private:
  std::ofstream owned_;
  std::ostream* os_;
  std::string line_;  // reused per record
  std::uint64_t written_ = 0;
};

/// JSONL sink with a bounded append buffer flushed to disk in fixed-size
/// chunks. Unlike JsonlTraceSink (which writes through an ofstream per
/// record), memory stays O(chunk_bytes) no matter how many records the run
/// emits — the sink for million-node traced runs. Output is byte-identical
/// to JsonlTraceSink on the same record stream (both use
/// append_record_json).
class StreamingTraceSink final : public TraceSink {
 public:
  /// Open `path` for writing (truncates). Buffered records are written out
  /// whenever the buffer reaches `chunk_bytes`. Throws std::runtime_error
  /// when the file cannot be opened or `chunk_bytes` is zero.
  explicit StreamingTraceSink(const std::string& path,
                              std::size_t chunk_bytes = 1u << 20);
  ~StreamingTraceSink() override;

  void record(const TraceRecord& rec) override;
  /// Write any partial chunk and push it to the OS.
  void flush() override;

  std::uint64_t records_written() const { return written_; }
  /// Full-chunk writes so far (excludes the partial chunk flush() writes).
  std::uint64_t chunks_flushed() const { return chunks_; }

 private:
  void write_buffer();

  std::ofstream out_;
  std::string buf_;
  std::size_t chunk_bytes_;
  std::uint64_t written_ = 0;
  std::uint64_t chunks_ = 0;
};

}  // namespace decentnet::sim
