#include "sim/time.hpp"

#include <cstdio>

namespace decentnet::sim {

std::string format_duration(SimDuration d) {
  char buf[64];
  const bool neg = d < 0;
  if (neg) d = -d;
  if (d >= kHour) {
    std::snprintf(buf, sizeof buf, "%s%.2fh", neg ? "-" : "",
                  static_cast<double>(d) / static_cast<double>(kHour));
  } else if (d >= kMinute) {
    std::snprintf(buf, sizeof buf, "%s%.2fmin", neg ? "-" : "",
                  static_cast<double>(d) / static_cast<double>(kMinute));
  } else if (d >= kSecond) {
    std::snprintf(buf, sizeof buf, "%s%.2fs", neg ? "-" : "",
                  static_cast<double>(d) / static_cast<double>(kSecond));
  } else if (d >= kMillisecond) {
    std::snprintf(buf, sizeof buf, "%s%.2fms", neg ? "-" : "",
                  static_cast<double>(d) / static_cast<double>(kMillisecond));
  } else {
    std::snprintf(buf, sizeof buf, "%s%lldus", neg ? "-" : "",
                  static_cast<long long>(d));
  }
  return buf;
}

}  // namespace decentnet::sim
