#include "sim/rng.hpp"

#include <cassert>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace decentnet::sim {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

namespace {
std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

Rng Rng::fork(std::uint64_t tag) {
  std::uint64_t mix = next() ^ (tag * 0x9E3779B97F4A7C15ull);
  return Rng(mix);
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  assert(n > 0);
  // Lemire's nearly-divisionless method would be faster; rejection sampling
  // keeps the draw unbiased and is plenty fast for a simulator.
  const std::uint64_t threshold = (~n + 1) % n;  // (2^64 - n) mod n
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % n;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(span == 0 ? next() : uniform_int(span));
}

bool Rng::chance(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return uniform() < p;
}

double Rng::exponential(double rate) {
  if (rate <= 0) throw std::invalid_argument("exponential: rate must be > 0");
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

double Rng::normal(double mean, double stddev) {
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::pareto(double x_m, double alpha) {
  if (x_m <= 0 || alpha <= 0) {
    throw std::invalid_argument("pareto: parameters must be > 0");
  }
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return x_m / std::pow(u, 1.0 / alpha);
}

double Rng::weibull(double lambda, double k) {
  if (lambda <= 0 || k <= 0) {
    throw std::invalid_argument("weibull: parameters must be > 0");
  }
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return lambda * std::pow(-std::log(u), 1.0 / k);
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  double total = 0;
  for (double w : weights) total += w;
  if (total <= 0) throw std::invalid_argument("weighted_index: no positive weight");
  double x = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x <= 0) return i;
  }
  return weights.size() - 1;
}

ZipfSampler::ZipfSampler(std::size_t n, double exponent) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: n must be positive");
  cdf_.resize(n);
  double acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), exponent);
    cdf_[i] = acc;
  }
  for (auto& c : cdf_) c /= acc;
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.uniform();
  // Binary search for the first cdf entry >= u.
  std::size_t lo = 0, hi = cdf_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace decentnet::sim
