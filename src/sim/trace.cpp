#include "sim/trace.hpp"

#include <stdexcept>

namespace decentnet::sim {

namespace {

void append_escaped(std::string& out, const char* s) {
  for (; *s; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      // Control characters never appear in our literal tags; keep the
      // escape anyway so arbitrary sink reuse stays valid JSON.
      static const char* hex = "0123456789abcdef";
      out += "\\u00";
      out += hex[(c >> 4) & 0xF];
      out += hex[c & 0xF];
    } else {
      out += c;
    }
  }
}

}  // namespace

void append_record_json(std::string& out, const TraceRecord& rec) {
  // Hand-rolled serialization: integer-only fields, no locale, no
  // allocation churn beyond the caller's reused buffer.
  out += "{\"t\":";
  out += std::to_string(rec.t);
  out += ",\"kind\":\"";
  append_escaped(out, rec.kind);
  out += '"';
  if (rec.tag && rec.tag[0] != '\0') {
    out += ",\"tag\":\"";
    append_escaped(out, rec.tag);
    out += '"';
  }
  out += ",\"id\":";
  out += std::to_string(rec.id);
  if (rec.a != 0) {
    out += ",\"a\":";
    out += std::to_string(rec.a);
  }
  if (rec.b != 0) {
    out += ",\"b\":";
    out += std::to_string(rec.b);
  }
  if (rec.bytes != 0) {
    out += ",\"bytes\":";
    out += std::to_string(rec.bytes);
  }
  if (rec.queue_us != 0) {
    // Nonzero only on "span" records under Bandwidth/Tcp transport, so
    // latency-only golden traces stay byte-identical.
    out += ",\"queue_us\":";
    out += std::to_string(rec.queue_us);
  }
  out += "}\n";
}

JsonlTraceSink::JsonlTraceSink(const std::string& path)
    : owned_(path, std::ios::out | std::ios::trunc), os_(&owned_) {
  if (!owned_) {
    throw std::runtime_error("JsonlTraceSink: cannot open " + path);
  }
  line_.reserve(96);
}

JsonlTraceSink::JsonlTraceSink(std::ostream& os) : os_(&os) {
  line_.reserve(96);
}

JsonlTraceSink::~JsonlTraceSink() { flush(); }

void JsonlTraceSink::record(const TraceRecord& rec) {
  line_.clear();
  append_record_json(line_, rec);
  os_->write(line_.data(), static_cast<std::streamsize>(line_.size()));
  ++written_;
}

void JsonlTraceSink::flush() {
  if (os_) os_->flush();
}

StreamingTraceSink::StreamingTraceSink(const std::string& path,
                                       std::size_t chunk_bytes)
    : out_(path, std::ios::out | std::ios::trunc | std::ios::binary),
      chunk_bytes_(chunk_bytes) {
  if (!out_) {
    throw std::runtime_error("StreamingTraceSink: cannot open " + path);
  }
  if (chunk_bytes_ == 0) {
    throw std::runtime_error("StreamingTraceSink: chunk_bytes must be > 0");
  }
  buf_.reserve(chunk_bytes_ + 256);
}

StreamingTraceSink::~StreamingTraceSink() { flush(); }

void StreamingTraceSink::record(const TraceRecord& rec) {
  append_record_json(buf_, rec);
  ++written_;
  if (buf_.size() >= chunk_bytes_) {
    write_buffer();
    ++chunks_;
  }
}

void StreamingTraceSink::write_buffer() {
  out_.write(buf_.data(), static_cast<std::streamsize>(buf_.size()));
  buf_.clear();
}

void StreamingTraceSink::flush() {
  if (!buf_.empty()) write_buffer();
  out_.flush();
}

}  // namespace decentnet::sim
