#include "sim/trace.hpp"

#include <stdexcept>

namespace decentnet::sim {

namespace {

void append_escaped(std::string& out, const char* s) {
  for (; *s; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      // Control characters never appear in our literal tags; keep the
      // escape anyway so arbitrary sink reuse stays valid JSON.
      static const char* hex = "0123456789abcdef";
      out += "\\u00";
      out += hex[(c >> 4) & 0xF];
      out += hex[c & 0xF];
    } else {
      out += c;
    }
  }
}

}  // namespace

JsonlTraceSink::JsonlTraceSink(const std::string& path)
    : owned_(path, std::ios::out | std::ios::trunc), os_(&owned_) {
  if (!owned_) {
    throw std::runtime_error("JsonlTraceSink: cannot open " + path);
  }
}

JsonlTraceSink::JsonlTraceSink(std::ostream& os) : os_(&os) {}

JsonlTraceSink::~JsonlTraceSink() { flush(); }

void JsonlTraceSink::record(const TraceRecord& rec) {
  // Hand-rolled serialization: integer-only fields, no locale, no
  // allocation churn beyond one reused line buffer.
  std::string line;
  line.reserve(96);
  line += "{\"t\":";
  line += std::to_string(rec.t);
  line += ",\"kind\":\"";
  append_escaped(line, rec.kind);
  line += '"';
  if (rec.tag && rec.tag[0] != '\0') {
    line += ",\"tag\":\"";
    append_escaped(line, rec.tag);
    line += '"';
  }
  line += ",\"id\":";
  line += std::to_string(rec.id);
  if (rec.a != 0) {
    line += ",\"a\":";
    line += std::to_string(rec.a);
  }
  if (rec.b != 0) {
    line += ",\"b\":";
    line += std::to_string(rec.b);
  }
  if (rec.bytes != 0) {
    line += ",\"bytes\":";
    line += std::to_string(rec.bytes);
  }
  line += "}\n";
  os_->write(line.data(), static_cast<std::streamsize>(line.size()));
  ++written_;
}

void JsonlTraceSink::flush() {
  if (os_) os_->flush();
}

}  // namespace decentnet::sim
