#include "sim/table.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <sstream>

namespace decentnet::sim {

void Table::set_header(std::vector<std::string> cells) {
  header_ = std::move(cells);
}

void Table::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

namespace {
bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!(std::isdigit(static_cast<unsigned char>(c)) || c == '.' ||
          c == '-' || c == '+' || c == 'e' || c == 'E' || c == '%' ||
          c == 'x')) {
      return false;
    }
  }
  return true;
}
}  // namespace

std::string Table::to_string() const {
  std::vector<std::size_t> width;
  auto grow = [&](const std::vector<std::string>& row) {
    if (row.size() > width.size()) width.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      width[i] = std::max(width[i], row[i].size());
    }
  };
  grow(header_);
  for (const auto& r : rows_) grow(r);

  std::ostringstream os;
  if (!title_.empty()) os << "== " << title_ << " ==\n";
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < width.size(); ++i) {
      const std::string cell = i < row.size() ? row[i] : "";
      const std::size_t pad = width[i] - cell.size();
      if (i > 0) os << "  ";
      if (looks_numeric(cell)) {
        os << std::string(pad, ' ') << cell;
      } else {
        os << cell << std::string(pad, ' ');
      }
    }
    os << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t w : width) total += w + 2;
    os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  }
  for (const auto& r : rows_) emit(r);
  return os.str();
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

}  // namespace decentnet::sim
