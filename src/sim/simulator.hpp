// The discrete-event simulation kernel.
//
// A Simulator owns an indexed priority queue of timestamped callbacks and a
// simulated clock. Everything in decentnet — network delivery, protocol
// timers, churn, mining — is expressed as events on one Simulator instance,
// which makes each experiment single-threaded and bit-for-bit reproducible
// from its root seed. (Multi-core runs compose several Simulators — one per
// shard — behind conservative-lookahead barriers; see sim/sharding.hpp.
// Each shard is exactly this kernel, untouched.)
//
// Hot-path design (this is the layer every experiment's scale is bounded by):
//   * Callbacks are sim::InlineFn<64>: captures up to 64 bytes live inside
//     the event slot itself (larger ones take a single boxed allocation), so
//     neither post() nor schedule() allocates in steady state.
//   * Events live in a slab arena recycled through a free list and are
//     referenced by slot index; the ready queue is a 4-ary heap of small
//     {when, seq, slot} entries, so sifting moves 24-byte records instead of
//     whole events and keeps the (when, seq) FIFO tie-break exact.
//   * EventHandle is a {slot, generation} ticket: cancellation flips the
//     slot's state, validity compares generations — no shared_ptr, no
//     allocation. Generations bump whenever a slot is released (fire,
//     cancelled-event reclaim, clear()), so stale handles read as invalid.
//
// Two scheduling flavours exist:
//   * schedule()/schedule_at()/schedule_periodic() return an EventHandle for
//     later cancellation.
//   * post()/post_at() are fire-and-forget. Both flavours are now
//     allocation-free; post() remains the idiomatic choice when the handle
//     would be discarded.
//
// Lifetime: EventHandle does not own the kernel. Handles must not be used
// after their Simulator is destroyed (every component in this repo holds a
// reference to a Simulator that outlives it, so this is the natural order).
//
// An optional TraceSink observes every scheduled/fired/cancelled event, and
// an optional Profiler wall-clock-times every fired callback per tag; with
// neither installed the hooks cost a single predictable null test each.
// Cancelled events are reclaimed lazily — the "cancel" trace record is
// emitted when the event would have fired, exactly as the original kernel
// did.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "sim/inline_fn.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"
#include "sim/trace.hpp"

namespace decentnet::sim {

// Deliberately only forward-declared here: profiler.hpp drags in hash-table
// templates, and instantiating those in every TU that includes the kernel
// header perturbs inlining of the hot paths compiled there. Telemetry gets
// the same treatment (telemetry.hpp pulls in <functional> and <fstream>).
class Profiler;
class Telemetry;
class Simulator;

/// Handle used to cancel a scheduled event (or a periodic series).
/// Cheap to copy; all copies refer to the same event.
class EventHandle {
 public:
  EventHandle() = default;

  /// True if the handle refers to an event (or periodic series) that has not
  /// fired or been cancelled. After Simulator::clear() all outstanding
  /// handles report invalid.
  bool valid() const;

  /// Cancel the event. Reclamation is lazy: the slot is recycled when the
  /// event surfaces in the queue. Idempotent; no-op after firing.
  void cancel();

 private:
  friend class Simulator;
  EventHandle(Simulator* sim, std::uint32_t slot, std::uint32_t gen)
      : sim_(sim), slot_(slot), gen_(gen) {}

  Simulator* sim_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint32_t gen_ = 0;
};

class Simulator {
 public:
  using Callback = InlineFn<64>;

  explicit Simulator(std::uint64_t seed = 0xDECE57ull) : rng_(seed) {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  SimTime now() const { return now_; }

  /// Root RNG for the simulation; fork per component for isolation.
  Rng& rng() { return rng_; }

  /// Install (or clear, with nullptr) the trace sink. The sink is borrowed:
  /// the caller keeps ownership and must outlive the simulator's use of it.
  void set_trace(TraceSink* sink) { trace_ = sink; }
  TraceSink* trace() const { return trace_; }

  /// Install (or clear, with nullptr) the self-profiler: every fired event's
  /// callback is wall-clock timed and attributed to its tag. Borrowed, same
  /// lifetime rule as the trace sink; null costs one test per fired event.
  void set_profiler(Profiler* profiler) { profiler_ = profiler; }
  Profiler* profiler() const { return profiler_; }

  /// Install (or clear, with nullptr) sim-time telemetry: the drain loop
  /// samples every registered series at each cadence boundary it crosses
  /// (see sim/telemetry.hpp). Borrowed, same lifetime rule as the trace
  /// sink; null costs nothing — the check shares the profiler's once-per-run
  /// loop selection, not a per-event branch.
  void set_telemetry(Telemetry* telemetry) { telemetry_ = telemetry; }
  Telemetry* telemetry() const { return telemetry_; }

  /// Schedule `fn` to run `delay` from now. Negative delays clamp to "now".
  /// `tag` (a string literal) labels the event in trace output.
  EventHandle schedule(SimDuration delay, Callback fn,
                       const char* tag = nullptr) {
    return schedule_at(now_ + (delay < 0 ? 0 : delay), std::move(fn), tag);
  }

  /// Schedule `fn` at an absolute simulated time (>= now).
  EventHandle schedule_at(SimTime when, Callback fn,
                          const char* tag = nullptr);

  /// Fire-and-forget variant of schedule(): no EventHandle. Prefer this when
  /// the handle would be discarded.
  void post(SimDuration delay, Callback fn, const char* tag = nullptr) {
    post_at(now_ + (delay < 0 ? 0 : delay), std::move(fn), tag);
  }

  /// Fire-and-forget variant of schedule_at().
  void post_at(SimTime when, Callback fn, const char* tag = nullptr);

  /// Schedule `fn` every `period`, starting after `initial_delay`.
  /// The returned handle cancels all future firings.
  EventHandle schedule_periodic(SimDuration initial_delay, SimDuration period,
                                Callback fn, const char* tag = nullptr);

  /// Run events until the queue drains or simulated time would pass `until`.
  /// Events at exactly `until` are executed. Returns events processed.
  std::size_t run_until(SimTime until);

  /// Run until the queue is empty (use with care: periodic timers never end).
  std::size_t run_all();

  /// Drop every pending event and periodic series. Outstanding EventHandles
  /// become invalid (their slots' generations are bumped).
  void clear();

  std::size_t pending_events() const { return heap_.size(); }
  std::uint64_t total_events_processed() const { return processed_; }

  /// Earliest queued fire time, or SimTime's max when the queue is empty.
  /// A cancelled-but-unreclaimed top counts — it is a conservative lower
  /// bound, which is all the sharded kernel's window computation needs
  /// (see sim/sharding.hpp).
  SimTime next_event_time() const {
    return heap_.empty() ? std::numeric_limits<SimTime>::max()
                         : heap_[0].when;
  }

 private:
  friend class EventHandle;

  enum class State : std::uint8_t {
    kFree,       // on the free list
    kPending,    // queued in the heap
    kCancelled,  // queued but cancelled; reclaimed lazily when it surfaces
    kSeries,     // periodic-series control slot (never in the heap)
  };

  /// One slab slot. For kSeries slots, `fn` is the user callback, `when`
  /// holds the period, and the slot is parked outside the heap while the
  /// per-firing events (small {this, slot, gen} captures) reference it.
  /// The FIFO tie-break sequence lives only in the HeapEntry — the slot
  /// never needs it, and dropping it (plus InlineFn's pointer alignment)
  /// keeps the slot at 96 bytes instead of 112.
  struct Event {
    SimTime when = 0;
    const char* tag = nullptr;  // trace category; may be null
    std::uint32_t gen = 0;
    State state = State::kFree;
    Callback fn;
  };

  /// Heap entry: the ordering key is copied next to the slot index so sift
  /// comparisons never chase into the arena.
  struct HeapEntry {
    SimTime when;
    std::uint64_t seq;
    std::uint32_t slot;
    bool before(const HeapEntry& o) const {
      return when != o.when ? when < o.when : seq < o.seq;
    }
  };

  std::uint32_t alloc_slot();
  void release_slot(std::uint32_t slot);
  std::uint32_t push_event(SimTime when, Callback fn, const char* tag);
  void heap_push(HeapEntry e);
  void heap_pop_min();
  void fire_top(const HeapEntry& top);
  void reclaim_cancelled_top(const HeapEntry& top);
  /// Drain-loop twins used when a profiler and/or telemetry is installed;
  /// selected once per run_* call and defined in simulator_profiled.cpp — a
  /// separate TU, so the uninstrumented loops (and everything compiled next
  /// to them) keep their pre-profiler codegen. See the comment atop that
  /// file.
  std::size_t run_until_instrumented(SimTime until);
  std::size_t run_all_instrumented();
  void arm_periodic(std::uint32_t slot, std::uint32_t gen, SimTime when,
                    const char* tag);
  void fire_periodic(std::uint32_t slot, std::uint32_t gen);

  bool handle_valid(std::uint32_t slot, std::uint32_t gen) const {
    if (slot >= arena_.size()) return false;
    const Event& ev = arena_[slot];
    return ev.gen == gen &&
           (ev.state == State::kPending || ev.state == State::kSeries);
  }
  void handle_cancel(std::uint32_t slot, std::uint32_t gen) {
    if (slot >= arena_.size()) return;
    Event& ev = arena_[slot];
    if (ev.gen != gen) return;
    if (ev.state == State::kPending) {
      ev.state = State::kCancelled;  // heap still references it: lazy reclaim
    } else if (ev.state == State::kSeries) {
      release_slot(slot);  // nothing queued references series slots
    }
  }

  SimTime now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t processed_ = 0;
  Rng rng_;
  TraceSink* trace_ = nullptr;
  std::vector<Event> arena_;
  std::vector<std::uint32_t> free_;
  std::vector<HeapEntry> heap_;  // 4-ary min-heap over (when, seq)
  // Last on purpose: the hot members above keep their pre-profiler offsets
  // (the fill/drain micros are sensitive to arena_/heap_ crossing lines).
  Profiler* profiler_ = nullptr;
  Telemetry* telemetry_ = nullptr;
};

inline bool EventHandle::valid() const {
  return sim_ != nullptr && sim_->handle_valid(slot_, gen_);
}

inline void EventHandle::cancel() {
  if (sim_ != nullptr) sim_->handle_cancel(slot_, gen_);
}

}  // namespace decentnet::sim
