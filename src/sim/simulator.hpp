// The discrete-event simulation kernel.
//
// A Simulator owns a priority queue of timestamped callbacks and a simulated
// clock. Everything in decentnet — network delivery, protocol timers, churn,
// mining — is expressed as events on one Simulator instance, which makes each
// experiment single-threaded and bit-for-bit reproducible from its root seed.
//
// Two scheduling flavours exist:
//   * schedule()/schedule_at()/schedule_periodic() return an EventHandle for
//     later cancellation, which costs one shared_ptr<bool> allocation.
//   * post()/post_at() are fire-and-forget: no cancellation flag, no
//     allocation. Use them whenever the handle would be discarded — message
//     delivery, one-shot continuations — they are the kernel's hot path.
//
// An optional TraceSink observes every scheduled/fired/cancelled event; with
// no sink installed the hooks cost a single predictable null test.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/rng.hpp"
#include "sim/time.hpp"
#include "sim/trace.hpp"

namespace decentnet::sim {

/// Handle used to cancel a scheduled event. Cancellation is lazy: the event
/// stays in the queue but its callback is dropped when it surfaces.
class EventHandle {
 public:
  EventHandle() = default;

  /// True if the handle refers to an event that has not fired or been
  /// cancelled (as of the last kernel interaction).
  bool valid() const { return alive_ && *alive_; }

  void cancel() {
    if (alive_) *alive_ = false;
  }

 private:
  friend class Simulator;
  explicit EventHandle(std::shared_ptr<bool> alive) : alive_(std::move(alive)) {}
  std::shared_ptr<bool> alive_;
};

class Simulator {
 public:
  using Callback = std::function<void()>;

  explicit Simulator(std::uint64_t seed = 0xDECE57ull) : rng_(seed) {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  SimTime now() const { return now_; }

  /// Root RNG for the simulation; fork per component for isolation.
  Rng& rng() { return rng_; }

  /// Install (or clear, with nullptr) the trace sink. The sink is borrowed:
  /// the caller keeps ownership and must outlive the simulator's use of it.
  void set_trace(TraceSink* sink) { trace_ = sink; }
  TraceSink* trace() const { return trace_; }

  /// Schedule `fn` to run `delay` from now. Negative delays clamp to "now".
  /// `tag` (a string literal) labels the event in trace output.
  EventHandle schedule(SimDuration delay, Callback fn,
                       const char* tag = nullptr) {
    return schedule_at(now_ + (delay < 0 ? 0 : delay), std::move(fn), tag);
  }

  /// Schedule `fn` at an absolute simulated time (>= now).
  EventHandle schedule_at(SimTime when, Callback fn,
                          const char* tag = nullptr);

  /// Fire-and-forget variant of schedule(): no EventHandle, no cancellation
  /// flag allocation. Prefer this when the handle would be discarded.
  void post(SimDuration delay, Callback fn, const char* tag = nullptr) {
    post_at(now_ + (delay < 0 ? 0 : delay), std::move(fn), tag);
  }

  /// Fire-and-forget variant of schedule_at().
  void post_at(SimTime when, Callback fn, const char* tag = nullptr);

  /// Schedule `fn` every `period`, starting after `initial_delay`.
  /// The returned handle cancels all future firings.
  EventHandle schedule_periodic(SimDuration initial_delay, SimDuration period,
                                Callback fn, const char* tag = nullptr);

  /// Run events until the queue drains or simulated time would pass `until`.
  /// Events at exactly `until` are executed. Returns events processed.
  std::size_t run_until(SimTime until);

  /// Run until the queue is empty (use with care: periodic timers never end).
  std::size_t run_all();

  /// Drop every pending event.
  void clear();

  std::size_t pending_events() const { return queue_.size(); }
  std::uint64_t total_events_processed() const { return processed_; }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;  // tie-breaker: FIFO among same-time events
    Callback fn;
    std::shared_ptr<bool> alive;  // null for detached (post) events
    const char* tag;              // trace category; may be null
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  void push_event(SimTime when, Callback fn, std::shared_ptr<bool> alive,
                  const char* tag);
  bool pop_one();

  SimTime now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t processed_ = 0;
  Rng rng_;
  TraceSink* trace_ = nullptr;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace decentnet::sim
