// Simulated-time types and helpers for the decentnet discrete-event kernel.
//
// All simulated durations and instants are expressed as a signed 64-bit count
// of microseconds. Using an integer (rather than floating point) keeps event
// ordering exact and runs fully deterministic across platforms.
#pragma once

#include <cstdint>
#include <string>

namespace decentnet::sim {

/// A point in simulated time, in microseconds since simulation start.
using SimTime = std::int64_t;

/// A span of simulated time, in microseconds.
using SimDuration = std::int64_t;

constexpr SimDuration kMicrosecond = 1;
constexpr SimDuration kMillisecond = 1000 * kMicrosecond;
constexpr SimDuration kSecond = 1000 * kMillisecond;
constexpr SimDuration kMinute = 60 * kSecond;
constexpr SimDuration kHour = 60 * kMinute;
constexpr SimDuration kDay = 24 * kHour;

constexpr SimDuration micros(double n) { return static_cast<SimDuration>(n); }
constexpr SimDuration millis(double n) {
  return static_cast<SimDuration>(n * static_cast<double>(kMillisecond));
}
constexpr SimDuration seconds(double n) {
  return static_cast<SimDuration>(n * static_cast<double>(kSecond));
}
constexpr SimDuration minutes(double n) {
  return static_cast<SimDuration>(n * static_cast<double>(kMinute));
}
constexpr SimDuration hours(double n) {
  return static_cast<SimDuration>(n * static_cast<double>(kHour));
}

/// Convert a simulated duration to fractional seconds (for reporting).
constexpr double to_seconds(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

/// Convert a simulated duration to fractional milliseconds (for reporting).
constexpr double to_millis(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kMillisecond);
}

/// Render a duration as a short human-readable string, e.g. "1.50s", "340ms".
std::string format_duration(SimDuration d);

}  // namespace decentnet::sim
