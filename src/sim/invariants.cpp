#include "sim/invariants.hpp"

namespace decentnet::sim {

namespace {
std::string describe(const InvariantViolation& v) {
  return "invariant '" + v.invariant + "' violated at t=" +
         std::to_string(v.at) + "us (event #" +
         std::to_string(v.events_processed) + "): " + v.detail;
}
}  // namespace

InvariantError::InvariantError(InvariantViolation v)
    : std::runtime_error(describe(v)), violation(std::move(v)) {}

InvariantChecker::InvariantChecker(Simulator& sim, MetricRegistry* metrics)
    : sim_(sim),
      owned_metrics_(metrics ? nullptr : std::make_unique<MetricRegistry>()),
      m_checks_((metrics ? *metrics : *owned_metrics_)
                    .counter("sim/invariant_checks")),
      m_violations_((metrics ? *metrics : *owned_metrics_)
                        .counter("sim/invariant_violations")) {}

InvariantChecker::~InvariantChecker() { timer_.cancel(); }

void InvariantChecker::add(std::string name, Predicate predicate) {
  entries_.push_back(Entry{std::move(name), std::move(predicate), false});
}

void InvariantChecker::start(SimDuration period) {
  timer_.cancel();
  timer_ = sim_.schedule_periodic(period, period, [this] { check_now(); },
                                  "invariant/check");
}

void InvariantChecker::stop() { timer_.cancel(); }

std::size_t InvariantChecker::check_now() {
  ++checks_run_;
  m_checks_.add();
  std::size_t found = 0;
  for (Entry& e : entries_) {
    if (e.tripped) continue;  // a sampled predicate reports once
    if (auto detail = e.predicate()) {
      e.tripped = true;
      ++found;
      record(e.name, std::move(*detail));
    }
  }
  return found;
}

void InvariantChecker::report(std::string invariant, std::string detail) {
  record(invariant, std::move(detail));
}

void InvariantChecker::record(const std::string& name, std::string detail) {
  InvariantViolation v;
  v.invariant = name;
  v.detail = std::move(detail);
  v.at = sim_.now();
  v.events_processed = sim_.total_events_processed();
  m_violations_.add();
  if (TraceSink* const tr = sim_.trace()) {
    // tag points at the detail-free registered name; entries_/violations_
    // keep their strings alive for the sink call (records are emitted
    // synchronously and never stored).
    tr->record({v.at, "invariant", v.invariant.c_str(), v.events_processed,
                0, 0, 0});
  }
  violations_.push_back(std::move(v));
  if (fail_fast_) throw InvariantError(violations_.back());
}

CommitLogInvariant::CommitLogInvariant(std::string name)
    : name_(std::move(name)) {}

void CommitLogInvariant::record(std::size_t node, std::uint64_t seq,
                                std::uint64_t fingerprint) {
  ++records_;
  const auto [it, inserted] = canon_.emplace(seq, Canon{fingerprint, node});
  if (inserted || it->second.fingerprint == fingerprint) return;
  ++conflicts_;
  std::string detail = "seq " + std::to_string(seq) + ": node " +
                       std::to_string(node) + " committed " +
                       std::to_string(fingerprint) + " but node " +
                       std::to_string(it->second.node) + " committed " +
                       std::to_string(it->second.fingerprint);
  if (!first_conflict_->has_value()) *first_conflict_ = detail;
  if (checker_ != nullptr) checker_->report(name_, std::move(detail));
}

InvariantChecker::Predicate CommitLogInvariant::predicate() const {
  // Shares the first-conflict slot so sampled checking sees conflicts that
  // happened between samples (and after the invariant object's locals are
  // captured by value).
  auto conflict = first_conflict_;
  return [conflict]() -> std::optional<std::string> { return *conflict; };
}

}  // namespace decentnet::sim
