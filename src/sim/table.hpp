// Plain-text table rendering so every bench prints its experiment's
// rows/series in a consistent, paper-like format.
#pragma once

#include <string>
#include <vector>

namespace decentnet::sim {

/// Column-aligned ASCII table. Add a header once, then rows; `to_string`
/// right-aligns numeric-looking cells and left-aligns text.
class Table {
 public:
  explicit Table(std::string title = "") : title_(std::move(title)) {}

  void set_header(std::vector<std::string> cells);
  void add_row(std::vector<std::string> cells);

  /// Convenience: format a double with fixed precision.
  static std::string num(double v, int precision = 2);

  std::string to_string() const;
  /// Print to stdout.
  void print() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace decentnet::sim
