// Inequality and decentralization statistics used throughout the paper's
// argument: who controls how much of a network's resources.
#pragma once

#include <cstddef>
#include <vector>

namespace decentnet::sim {

/// Gini coefficient of a distribution of non-negative shares.
/// 0 = perfectly equal, 1 = one entity holds everything.
double gini(std::vector<double> values);

/// Nakamoto coefficient: the minimum number of entities whose combined share
/// exceeds `threshold` (default: strict majority). Higher = more
/// decentralized. Returns 0 for an empty or all-zero input.
std::size_t nakamoto_coefficient(std::vector<double> shares,
                                 double threshold = 0.5);

/// Shannon entropy (bits) of the normalized share distribution. log2(n) for a
/// perfectly even n-way split, 0 when a single entity holds everything.
double shannon_entropy(const std::vector<double>& shares);

/// Herfindahl-Hirschman index of the normalized shares (sum of squared
/// shares): 1/n for even split, 1.0 for a monopoly.
double hhi(const std::vector<double>& shares);

/// Combined share of the k largest entities (e.g. "top 6 pools held 75%").
double top_k_share(std::vector<double> shares, std::size_t k);

}  // namespace decentnet::sim
