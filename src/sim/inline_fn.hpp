// InlineFn: a move-only `void()` callable with fixed-capacity inline storage.
//
// The simulation kernel schedules tens of millions of closures per run;
// std::function's type erasure costs a heap allocation whenever a capture
// outgrows its small buffer (16 bytes on libstdc++) and drags a full
// copyability requirement along. InlineFn<64> stores any callable of up to
// its capacity directly in the event arena slot — post()/schedule() then
// allocate nothing — and falls back to a single heap box for oversized
// captures so no call site ever fails to compile.
//
// Contract:
//   * move-only (the kernel never copies events);
//   * invoking an empty InlineFn is undefined (the kernel never does);
//   * captures must be move-constructible; over-aligned captures
//     (> alignof(void*)) take the heap path. The buffer is only
//     pointer-aligned: that keeps sizeof(InlineFn<64>) at 72 instead of 80,
//     which shaves a cache line's worth off every event arena slot, and
//     every capture the kernel actually sees is built from pointers,
//     integers, and SimTime values.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace decentnet::sim {

template <std::size_t Capacity>
class InlineFn {
  static_assert(Capacity >= sizeof(void*),
                "InlineFn capacity must at least hold the heap-fallback "
                "pointer");

 public:
  InlineFn() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineFn(F&& f) {  // NOLINT: implicit by design, mirrors std::function
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= Capacity && alignof(Fn) <= alignof(void*) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      static_assert(sizeof(Fn) <= Capacity,
                    "capture spilled out of InlineFn's inline buffer");
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      vt_ = &kInlineVt<Fn>;
    } else {
      // Heap fallback: one allocation, same as std::function would pay.
      ::new (static_cast<void*>(buf_))
          Fn*(new Fn(std::forward<F>(f)));
      vt_ = &kBoxedVt<Fn>;
    }
  }

  InlineFn(InlineFn&& other) noexcept : vt_(other.vt_) {
    if (vt_) vt_->relocate(buf_, other.buf_);
    other.vt_ = nullptr;
  }

  InlineFn& operator=(InlineFn&& other) noexcept {
    if (this != &other) {
      reset();
      vt_ = other.vt_;
      if (vt_) vt_->relocate(buf_, other.buf_);
      other.vt_ = nullptr;
    }
    return *this;
  }

  InlineFn(const InlineFn&) = delete;
  InlineFn& operator=(const InlineFn&) = delete;

  ~InlineFn() { reset(); }

  void operator()() { vt_->invoke(buf_); }

  explicit operator bool() const noexcept { return vt_ != nullptr; }

  void reset() noexcept {
    if (vt_) {
      vt_->destroy(buf_);
      vt_ = nullptr;
    }
  }

 private:
  struct VTable {
    void (*invoke)(void*);
    // Move-construct into `dst` from `src`, then destroy `src`'s value.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
  };

  template <typename Fn>
  static constexpr VTable kInlineVt{
      [](void* p) { (*std::launder(reinterpret_cast<Fn*>(p)))(); },
      [](void* dst, void* src) noexcept {
        Fn* s = std::launder(reinterpret_cast<Fn*>(src));
        ::new (dst) Fn(std::move(*s));
        s->~Fn();
      },
      [](void* p) noexcept { std::launder(reinterpret_cast<Fn*>(p))->~Fn(); },
  };

  template <typename Fn>
  static constexpr VTable kBoxedVt{
      [](void* p) { (**std::launder(reinterpret_cast<Fn**>(p)))(); },
      [](void* dst, void* src) noexcept {
        // The stored value is a raw pointer: relocation is a bit copy.
        ::new (dst) Fn*(*std::launder(reinterpret_cast<Fn**>(src)));
      },
      [](void* p) noexcept { delete *std::launder(reinterpret_cast<Fn**>(p)); },
  };

  alignas(void*) unsigned char buf_[Capacity];
  const VTable* vt_ = nullptr;
};

}  // namespace decentnet::sim
