// Opt-in kernel self-profiler.
//
// A Profiler attributes wall-clock time and event counts to event tags (the
// string literals passed to schedule()/post()) and, by prefix, to subsystems
// ("net/deliver" -> "net"). It follows the TraceSink discipline exactly: the
// Simulator holds a nullable pointer, and with no profiler installed the hot
// path pays one predictable null test. With one installed, each fired event
// costs two steady_clock reads and one open-addressed table update keyed on
// the tag pointer.
//
// Determinism note: wall-clock numbers are inherently nondeterministic, so
// profiler output is reported out-of-band (the ExperimentHarness "profile"
// JSON key) and must never feed back into simulation state or the
// byte-compared parts of the artifact. Event *counts* per tag are
// deterministic; only wall_ns varies run to run.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>

namespace decentnet::sim {

class Profiler {
 public:
  struct TagStats {
    std::uint64_t events = 0;
    std::uint64_t wall_ns = 0;
  };

  /// Monotonic wall-clock nanoseconds (std::chrono::steady_clock).
  static std::uint64_t now_ns();

  /// Attribute one fired event under `tag` (may be null: untagged bucket).
  /// Keyed on the tag *pointer* — O(1), no string hashing on the hot path;
  /// aggregation by string content happens at report time. Defined out of
  /// line so callers (the kernel's profiled drain loops) don't instantiate
  /// the hash table in their own translation unit — that inflates GCC's
  /// unit-growth inlining budget and degrades the unprofiled hot paths
  /// compiled alongside.
  void record(const char* tag, std::uint64_t elapsed_ns);

  bool empty() const { return slots_.empty(); }
  void clear() { slots_.clear(); }

  /// Fold another profiler's samples into this one (run_points merges
  /// point-local profilers in index order, mirroring MetricRegistry).
  void merge_from(const Profiler& other);

  /// Aggregated by tag string content, sorted by tag name. The same literal
  /// can have distinct addresses across translation units; this is where
  /// those buckets collapse. Null/empty tags report as "(untagged)".
  std::map<std::string, TagStats> by_tag() const;

  /// Aggregated by tag prefix before '/' ("net/deliver" -> "net"); tags
  /// without a '/' fall into their full name's bucket.
  std::map<std::string, TagStats> by_subsystem() const;

  TagStats total() const;

  /// Deterministically ordered JSON object:
  /// {"total":{...},"subsystems":{...},"tags":{...}}. Values (wall_ns) are
  /// nondeterministic; structure and ordering are not.
  std::string to_json() const;

 private:
  std::unordered_map<const char*, TagStats> slots_;
};

}  // namespace decentnet::sim
