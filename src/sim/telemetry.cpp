#include "sim/telemetry.hpp"

#include <algorithm>
#include <charconv>
#include <stdexcept>
#include <system_error>
#include <utility>

#include "sim/simulator.hpp"

namespace decentnet::sim {

namespace {

void append_uint(std::string& out, std::uint64_t v) {
  char tmp[20];
  char* p = tmp + sizeof(tmp);
  do {
    *--p = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  out.append(p, tmp + sizeof(tmp) - p);
}

void append_double(std::string& out, double v) {
  // Shortest round-trip form: equal doubles always serialize to equal
  // bytes, and a parse gives back the exact value. Integral values come out
  // without an exponent or trailing zeros ("3", "0.5", "1e+20").
  char tmp[32];
  const auto res = std::to_chars(tmp, tmp + sizeof(tmp), v);
  if (res.ec != std::errc()) {
    out += '0';  // unreachable for finite doubles; keep the line valid
    return;
  }
  out.append(tmp, res.ptr);
}

}  // namespace

void append_series_json(std::string& out, SimTime t, std::uint32_t shard,
                        const std::string& series, double value) {
  out += "{\"t\":";
  append_uint(out, static_cast<std::uint64_t>(t));
  out += ",\"shard\":";
  append_uint(out, shard);
  out += ",\"series\":\"";
  out += series;  // series names are code-chosen identifiers: no escaping
  out += "\",\"v\":";
  append_double(out, value);
  out += "}\n";
}

// ---------------------------------------------------------------------------
// SeriesSink
// ---------------------------------------------------------------------------

SeriesSink::SeriesSink(const std::string& path, std::size_t chunk_bytes)
    : out_(path, std::ios::binary | std::ios::trunc),
      chunk_bytes_(chunk_bytes) {
  if (!out_.is_open()) {
    throw std::runtime_error("SeriesSink: cannot open " + path);
  }
  if (chunk_bytes_ == 0) {
    throw std::runtime_error("SeriesSink: chunk_bytes must be > 0");
  }
  buf_.reserve(chunk_bytes_ + 256);
}

SeriesSink::~SeriesSink() {
  try {
    flush();
  } catch (...) {
    // destructor: swallow write failures, same policy as the trace sinks
  }
}

void SeriesSink::record(SimTime t, std::uint32_t shard,
                        const std::string& series, double value) {
  append_series_json(buf_, t, shard, series, value);
  ++written_;
  if (buf_.size() >= chunk_bytes_) write_buffer();
}

void SeriesSink::write_buffer() {
  out_.write(buf_.data(), static_cast<std::streamsize>(buf_.size()));
  buf_.clear();
}

void SeriesSink::flush() {
  if (!buf_.empty()) write_buffer();
  out_.flush();
}

// ---------------------------------------------------------------------------
// Telemetry
// ---------------------------------------------------------------------------

Telemetry::Telemetry(SeriesSink& sink, SimDuration interval)
    : sink_(sink), interval_(interval > 0 ? interval : millis(100)),
      due_(interval_) {}

void Telemetry::begin_run() {
  series_.clear();
  order_.clear();
  order_dirty_ = false;
  due_ = interval_;
}

void Telemetry::add_gauge(std::string name, std::uint32_t shard, GaugeFn fn) {
  Series s;
  s.name = std::move(name);
  s.shard = shard;
  s.gauge = std::move(fn);
  series_.push_back(std::move(s));
  order_dirty_ = true;
}

void Telemetry::add_rate(std::string name, std::uint32_t shard,
                         const Counter& counter) {
  Series s;
  s.name = std::move(name);
  s.shard = shard;
  s.counter = &counter;
  s.last = counter.value();
  series_.push_back(std::move(s));
  order_dirty_ = true;
}

void Telemetry::attach(Simulator& simu) {
  begin_run();
  Simulator* const sp = &simu;
  add_gauge("kernel/backlog", 0, [sp](SimTime) {
    return static_cast<double>(sp->pending_events());
  });
  simu.set_telemetry(this);
}

void Telemetry::rebuild_order() {
  order_.resize(series_.size());
  for (std::uint32_t i = 0; i < order_.size(); ++i) order_[i] = i;
  std::sort(order_.begin(), order_.end(),
            [this](std::uint32_t a, std::uint32_t b) {
              const Series& x = series_[a];
              const Series& y = series_[b];
              if (x.shard != y.shard) return x.shard < y.shard;
              if (x.name != y.name) return x.name < y.name;
              return a < b;  // duplicate registrations keep their order
            });
  order_dirty_ = false;
}

void Telemetry::advance_to(SimTime now) {
  if (now < due_ || series_.empty()) return;
  if (order_dirty_) rebuild_order();
  while (due_ <= now) {
    const SimTime t = due_;
    for (const std::uint32_t idx : order_) {
      Series& s = series_[idx];
      double v;
      if (s.counter != nullptr) {
        const std::uint64_t cur = s.counter->value();
        v = static_cast<double>(cur - s.last);
        s.last = cur;
      } else {
        v = s.gauge(t);
      }
      sink_.record(t, s.shard, s.name, v);
    }
    due_ += interval_;
  }
}

}  // namespace decentnet::sim
