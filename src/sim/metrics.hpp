// Measurement primitives used by every experiment.
//
// Histogram keeps raw samples (with optional reservoir downsampling) so the
// benches can report exact percentiles; Counter/Gauge are simple named
// scalars grouped in a MetricRegistry.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/rng.hpp"

namespace decentnet::sim {

/// Collects double-valued samples and answers summary-statistics queries.
///
/// Stores every sample up to `max_samples`, then switches to reservoir
/// sampling (Vitter's algorithm R) so memory stays bounded while percentile
/// estimates remain unbiased. count()/sum()/mean() are always exact.
class Histogram {
 public:
  explicit Histogram(std::size_t max_samples = 1 << 20,
                     std::uint64_t reservoir_seed = 0x5EED);

  void record(double value);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const;
  double stddev() const;
  double min() const;
  double max() const;

  /// Percentile in [0, 100]. Returns 0 when empty.
  double percentile(double p) const;
  double median() const { return percentile(50); }

  /// Fraction of samples <= threshold (empirical CDF). Returns 0 when empty.
  double fraction_below(double threshold) const;

  const std::vector<double>& samples() const { return samples_; }
  void clear();

 private:
  void ensure_sorted() const;

  std::size_t max_samples_;
  std::uint64_t count_ = 0;
  double sum_ = 0;
  double sum_sq_ = 0;
  double min_ = 0;
  double max_ = 0;
  mutable bool sorted_ = true;
  mutable std::vector<double> samples_;
  mutable Rng reservoir_rng_;
};

/// Monotonically increasing named count.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// A named collection of counters and histograms, shared across the
/// components of one experiment.
class MetricRegistry {
 public:
  Counter& counter(const std::string& name) { return counters_[name]; }
  Histogram& histogram(const std::string& name) { return histograms_[name]; }

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  /// Render all metrics as "name: value" lines (for debugging/examples).
  std::string summary() const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace decentnet::sim
