// Measurement primitives used by every experiment.
//
// Histogram keeps raw samples (with optional reservoir downsampling) so the
// benches can report exact percentiles; Counter is a simple scalar. A
// MetricRegistry maps scoped names ("<layer>/<name>", e.g. "net/bytes_sent",
// "chain/blocks_mined") to metric objects with *stable addresses*: components
// look a handle up once at construction and record through the reference on
// the hot path — no per-record string hashing or map walks.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "sim/rng.hpp"

namespace decentnet::sim {

/// Collects double-valued samples and answers summary-statistics queries.
///
/// Stores every sample up to `max_samples`, then switches to reservoir
/// sampling (Vitter's algorithm R) so memory stays bounded while percentile
/// estimates remain unbiased. count()/sum()/mean() are always exact.
class Histogram {
 public:
  explicit Histogram(std::size_t max_samples = 1 << 20,
                     std::uint64_t reservoir_seed = 0x5EED);

  void record(double value);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const;
  double stddev() const;
  double min() const;
  double max() const;

  /// Percentile in [0, 100]. Returns 0 when empty.
  double percentile(double p) const;
  double median() const { return percentile(50); }

  /// Fraction of samples <= threshold (empirical CDF). Returns 0 when empty.
  double fraction_below(double threshold) const;

  /// Fold `other`'s data into this histogram. count/sum/mean/min/max stay
  /// exact; the sample pool is the concatenation of both pools (reservoir-
  /// downsampled past capacity), so percentiles are exact whenever neither
  /// side overflowed its reservoir. Deterministic in the merge order — the
  /// parallel experiment runner merges per-point registries in submission
  /// order so artifacts don't depend on thread scheduling.
  void merge(const Histogram& other);

  std::size_t max_samples() const { return max_samples_; }
  const std::vector<double>& samples() const { return samples_; }
  void clear();

 private:
  void ensure_sorted() const;

  std::size_t max_samples_;
  std::uint64_t count_ = 0;
  double sum_ = 0;
  double sum_sq_ = 0;
  double min_ = 0;
  double max_ = 0;
  mutable bool sorted_ = true;
  mutable std::vector<double> samples_;
  mutable Rng reservoir_rng_;
};

/// Monotonically increasing count.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// A named collection of counters and histograms, shared across the
/// components of one experiment.
///
/// Handle contract: counter()/histogram() return references that stay valid
/// for the registry's lifetime (node-based storage), so the idiomatic use is
///
///   class FullNode {
///     sim::Counter& blocks_accepted_;   // bound once in the ctor
///     ...
///     FullNode(net::Network& net, ...)
///         : blocks_accepted_(net.metrics().counter("chain/blocks_accepted"))
///   };
///
/// and the hot path is a plain integer add through the reference.
class MetricRegistry {
 public:
  /// Look up or create the counter under `name` (scoped "<layer>/<name>").
  Counter& counter(std::string_view name);
  /// Look up or create the histogram under `name`. `max_samples` only
  /// applies when the call creates the histogram.
  Histogram& histogram(std::string_view name,
                       std::size_t max_samples = 1 << 20);

  const std::map<std::string, Counter, std::less<>>& counters() const {
    return counters_;
  }
  const std::map<std::string, Histogram, std::less<>>& histograms() const {
    return histograms_;
  }

  /// Fold every metric of `other` into this registry (counters add, same-name
  /// histograms merge). Used by the parallel experiment runner to combine
  /// per-sweep-point registries deterministically.
  void merge_from(const MetricRegistry& other);

  /// Render all metrics as "name: value" lines (for debugging/examples).
  std::string summary() const;

  /// All metrics as one deterministic JSON object: counters map to integer
  /// values, histograms to {count, mean, p50, p90, p99, max} objects.
  std::string to_json() const;

 private:
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace decentnet::sim
