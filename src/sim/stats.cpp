#include "sim/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace decentnet::sim {

double gini(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double total = std::accumulate(values.begin(), values.end(), 0.0);
  if (total <= 0) return 0.0;
  // G = (2 * sum_i i*x_(i) ) / (n * sum x) - (n+1)/n, with i starting at 1.
  double weighted = 0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    weighted += static_cast<double>(i + 1) * values[i];
  }
  const double n = static_cast<double>(values.size());
  return (2.0 * weighted) / (n * total) - (n + 1.0) / n;
}

std::size_t nakamoto_coefficient(std::vector<double> shares, double threshold) {
  const double total = std::accumulate(shares.begin(), shares.end(), 0.0);
  if (total <= 0) return 0;
  std::sort(shares.begin(), shares.end(), std::greater<>());
  double acc = 0;
  for (std::size_t i = 0; i < shares.size(); ++i) {
    acc += shares[i];
    if (acc / total > threshold) return i + 1;
  }
  return shares.size();
}

double shannon_entropy(const std::vector<double>& shares) {
  const double total = std::accumulate(shares.begin(), shares.end(), 0.0);
  if (total <= 0) return 0.0;
  double h = 0;
  for (double s : shares) {
    if (s <= 0) continue;
    const double p = s / total;
    h -= p * std::log2(p);
  }
  return h;
}

double hhi(const std::vector<double>& shares) {
  const double total = std::accumulate(shares.begin(), shares.end(), 0.0);
  if (total <= 0) return 0.0;
  double sum_sq = 0;
  for (double s : shares) {
    const double p = s / total;
    sum_sq += p * p;
  }
  return sum_sq;
}

double top_k_share(std::vector<double> shares, std::size_t k) {
  const double total = std::accumulate(shares.begin(), shares.end(), 0.0);
  if (total <= 0 || k == 0) return 0.0;
  std::sort(shares.begin(), shares.end(), std::greater<>());
  k = std::min(k, shares.size());
  return std::accumulate(shares.begin(), shares.begin() + static_cast<long>(k),
                         0.0) /
         total;
}

}  // namespace decentnet::sim
