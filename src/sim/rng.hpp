// Deterministic random number generation for simulations.
//
// The kernel uses xoshiro256** seeded via splitmix64. Every simulation object
// that needs randomness should take a seed (or a Rng forked from the parent's)
// so a whole experiment replays exactly from a single root seed.
#pragma once

#include <cstdint>
#include <vector>

namespace decentnet::sim {

/// splitmix64 step; used for seeding and as a cheap stateless mixer.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** generator with convenience distributions.
///
/// Satisfies UniformRandomBitGenerator so it can also be plugged into
/// <random> distributions, but the built-in draws below are preferred for
/// cross-platform determinism (libstdc++/libc++ distributions differ).
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0xDECE57ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }
  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Fork an independent stream; deterministic in (parent state, tag).
  Rng fork(std::uint64_t tag);

  /// Uniform in [0, 1).
  double uniform();
  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_int(std::uint64_t n);
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Bernoulli trial with success probability p.
  bool chance(double p);

  /// Exponential with the given rate (mean 1/rate).
  double exponential(double rate);
  /// Normal via Box-Muller.
  double normal(double mean, double stddev);
  /// Log-normal: exp(N(mu, sigma)).
  double lognormal(double mu, double sigma);
  /// Pareto with scale x_m and shape alpha (heavy-tailed session times).
  double pareto(double x_m, double alpha);
  /// Weibull with scale lambda and shape k (churn session models).
  double weibull(double lambda, double k);

  /// Sample an index in [0, weights.size()) proportionally to weights.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename Vec>
  void shuffle(Vec& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform_int(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
};

/// Zipf(1..n, exponent s) sampler with O(1) amortized draws via precomputed
/// CDF. Used for content popularity and transaction skew.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double exponent);

  /// Returns a rank in [0, n); rank 0 is the most popular item.
  std::size_t sample(Rng& rng) const;

  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace decentnet::sim
