// Deterministic sim-time telemetry: gauges and windowed counter-rates
// sampled on a fixed simulated-time cadence and streamed as compact JSONL
// series records.
//
// Where traces answer "what happened to message X", telemetry answers "what
// did the run look like over time": kernel backlog, transport queue bytes,
// cwnd ramps, drop rates, fault state — one {t, shard, series, v} record per
// registered series per cadence boundary. The stream is a pure function of
// the simulation, never of wall-clock:
//
//   * Sampling happens at fixed sim-time boundaries (t = k * interval). On a
//     plain Simulator the instrumented drain loop (simulator_profiled.cpp)
//     samples between events; on a ShardedKernel the driver samples at
//     barrier windows while workers are quiescent, so per-shard series are
//     byte-identical at any --sim-threads — the same contract as traces.
//   * Within one boundary, series are emitted in (shard, name) order.
//   * A rate series reports the counter delta since the previous boundary
//     (0 across idle gaps). When a sharded barrier crosses several
//     boundaries at once, the whole delta lands on the first one — later
//     boundaries in the same batch read 0, keeping the cadence fixed
//     without pretending to sub-window resolution the kernel doesn't have.
//
// Telemetry is off by default and never schedules kernel events, so golden
// traces and perf artifacts are untouched unless --telemetry is given.
#pragma once

#include <cstdint>
#include <deque>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "sim/metrics.hpp"
#include "sim/time.hpp"

namespace decentnet::sim {

class Simulator;

/// Append one series record to `out` as a JSONL line (trailing newline
/// included): {"t":T,"shard":S,"series":"name","v":V}. `v` is formatted with
/// std::to_chars shortest round-trip, so equal doubles always produce equal
/// bytes — the formatter every telemetry byte-compare rests on.
void append_series_json(std::string& out, SimTime t, std::uint32_t shard,
                        const std::string& series, double value);

/// JSONL series writer with the same bounded chunk-buffer discipline as
/// StreamingTraceSink: memory stays O(chunk_bytes) regardless of run length.
class SeriesSink {
 public:
  /// Open `path` for writing (truncates). Throws std::runtime_error when the
  /// file cannot be opened or `chunk_bytes` is zero.
  explicit SeriesSink(const std::string& path,
                      std::size_t chunk_bytes = 1u << 20);
  ~SeriesSink();

  SeriesSink(const SeriesSink&) = delete;
  SeriesSink& operator=(const SeriesSink&) = delete;

  void record(SimTime t, std::uint32_t shard, const std::string& series,
              double value);
  /// Write any partial chunk and push it to the OS.
  void flush();

  std::uint64_t records_written() const { return written_; }

 private:
  void write_buffer();

  std::ofstream out_;
  std::string buf_;
  std::size_t chunk_bytes_;
  std::uint64_t written_ = 0;
};

/// Registry + sampler. Components register gauges (a callback evaluated at
/// each boundary) or rates (a Counter watched for deltas); the kernel calls
/// advance_to() as simulated time passes and every cadence boundary crossed
/// emits one full batch of samples to the sink.
///
/// Lifetime: the sink is borrowed and must outlive the Telemetry. Gauge
/// callbacks and watched counters must stay valid until the next
/// begin_run() — attach()/ShardedKernel::set_telemetry() call it, so
/// re-instrumenting for a new row drops the previous row's registrations
/// before any stale pointer could be sampled.
class Telemetry {
 public:
  using GaugeFn = std::function<double(SimTime)>;

  explicit Telemetry(SeriesSink& sink, SimDuration interval = millis(100));

  SimDuration interval() const { return interval_; }

  /// Drop all registered series and rewind the cadence to the first
  /// boundary. Called at the start of every instrumented run.
  void begin_run();

  /// Register a gauge: `fn(t)` is evaluated at each cadence boundary `t`.
  void add_gauge(std::string name, std::uint32_t shard, GaugeFn fn);

  /// Register a windowed rate over `counter`: each boundary reports the
  /// delta since the previous one. The watermark starts at the counter's
  /// current value, so pre-run accumulation (a harness registry shared
  /// across rows) never leaks into the first sample.
  void add_rate(std::string name, std::uint32_t shard, const Counter& counter);

  /// Instrument a plain Simulator: begin_run(), register the kernel backlog
  /// gauge, and install this telemetry on the kernel's drain loop.
  void attach(Simulator& simu);

  /// First boundary not yet sampled. The drain loops compare against this
  /// before paying for an advance_to() call.
  SimTime next_due() const { return due_; }

  /// Emit one sample batch for every cadence boundary <= now that has not
  /// been sampled yet. Idempotent per boundary; cheap no-op when now is
  /// before next_due().
  void advance_to(SimTime now);

 private:
  struct Series {
    std::string name;
    std::uint32_t shard = 0;
    GaugeFn gauge;                        // empty for rates
    const Counter* counter = nullptr;     // null for gauges
    std::uint64_t last = 0;               // rate watermark
  };

  void rebuild_order();

  SeriesSink& sink_;
  SimDuration interval_;
  SimTime due_;
  std::deque<Series> series_;           // stable addresses; registration order
  std::vector<std::uint32_t> order_;    // indices sorted by (shard, name)
  bool order_dirty_ = false;
};

}  // namespace decentnet::sim
