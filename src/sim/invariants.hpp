// Online invariant checking: protocols register predicates, the checker
// samples them on a periodic kernel event (and accepts event-driven reports),
// and every violation is pinned to its trace position — the simulated time
// and the kernel's processed-event count, which is exactly where to seek in
// a --trace JSONL stream.
//
// Two styles compose:
//
//   * Sampled predicates — add(name, fn) where fn returns nullopt when the
//     invariant holds or a detail string when it is violated; start(period)
//     drives them from a periodic event, check_now() drives them on demand.
//   * Event-driven reports — report(name, detail) records a violation at the
//     exact moment protocol code detects it (CommitLogInvariant uses this to
//     flag conflicting commits synchronously from commit hooks).
//
// With fail-fast enabled a violation throws InvariantError immediately
// (tests); otherwise violations accumulate and are counted under the
// sim/invariant_* metrics (benches report the count, expected 0 for honest
// configurations).
//
// Protocol-shaped predicate builders live in sim::invariants as templates
// (duck-typed over the node interface), so this layer does not link against
// bft/ or chain/.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/metrics.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace decentnet::sim {

/// One recorded violation, pinned to its trace position.
struct InvariantViolation {
  std::string invariant;  // registered name
  std::string detail;     // what was observed
  SimTime at = 0;         // simulated time of detection
  std::uint64_t events_processed = 0;  // kernel event count = trace position
};

/// Thrown on violation when fail-fast is enabled.
class InvariantError : public std::runtime_error {
 public:
  explicit InvariantError(InvariantViolation v);
  const InvariantViolation violation;
};

class InvariantChecker {
 public:
  /// A predicate returns std::nullopt while the invariant holds, or a human-
  /// readable detail string when it is violated. Predicates may keep state
  /// (e.g. the per-term leader map) in their closures.
  using Predicate = std::function<std::optional<std::string>()>;

  /// `metrics` optionally points at the experiment registry for the
  /// sim/invariant_checks and sim/invariant_violations counters.
  explicit InvariantChecker(Simulator& sim,
                            MetricRegistry* metrics = nullptr);
  ~InvariantChecker();

  InvariantChecker(const InvariantChecker&) = delete;
  InvariantChecker& operator=(const InvariantChecker&) = delete;

  Simulator& simulator() { return sim_; }

  /// Register a sampled predicate. May be called at any time, including
  /// mid-run (e.g. arm a convergence check only after a heal event).
  void add(std::string name, Predicate predicate);

  /// Sample every predicate each `period` of simulated time.
  void start(SimDuration period);
  void stop();

  /// Sample every predicate once; returns the number of new violations.
  std::size_t check_now();

  /// Event-driven violation report (from protocol hooks); records at the
  /// current trace position, bumps metrics, honours fail-fast.
  void report(std::string invariant, std::string detail);

  /// Throw InvariantError on the first violation instead of accumulating.
  void set_fail_fast(bool on) { fail_fast_ = on; }
  bool fail_fast() const { return fail_fast_; }

  bool ok() const { return violations_.empty(); }
  const std::vector<InvariantViolation>& violations() const {
    return violations_;
  }
  std::uint64_t checks_run() const { return checks_run_; }
  std::size_t predicate_count() const { return entries_.size(); }

 private:
  struct Entry {
    std::string name;
    Predicate predicate;
    bool tripped = false;  // report each sampled predicate's failure once
  };

  void record(const std::string& name, std::string detail);

  Simulator& sim_;
  std::unique_ptr<MetricRegistry> owned_metrics_;
  Counter& m_checks_;
  Counter& m_violations_;
  // deque: stable element addresses so trace tags can point at entry names.
  std::deque<Entry> entries_;
  std::vector<InvariantViolation> violations_;
  std::uint64_t checks_run_ = 0;
  bool fail_fast_ = false;
  EventHandle timer_;
};

/// Cross-node commit-log agreement: every node reports its committed
/// (sequence, fingerprint) pairs through record(); two nodes committing
/// different fingerprints at the same sequence is a safety violation
/// (Raft log matching / PBFT agreement). Wire protocol commit hooks to
/// record() and either bind() the checker for fail-fast event-driven
/// reporting or register predicate() for sampled checking.
class CommitLogInvariant {
 public:
  explicit CommitLogInvariant(std::string name = "commit-agreement");

  /// Report a conflict the moment record() detects one.
  void bind(InvariantChecker* checker) { checker_ = checker; }

  /// Node `node` committed `fingerprint` (e.g. the command id or batch
  /// digest) at `seq`.
  void record(std::size_t node, std::uint64_t seq, std::uint64_t fingerprint);

  std::uint64_t conflicts() const { return conflicts_; }
  std::uint64_t records() const { return records_; }
  const std::string& name() const { return name_; }

  /// Sticky sampled predicate: fails once any conflict has been seen.
  InvariantChecker::Predicate predicate() const;

 private:
  struct Canon {
    std::uint64_t fingerprint;
    std::size_t node;  // first reporter, for the detail message
  };

  std::string name_;
  InvariantChecker* checker_ = nullptr;
  std::map<std::uint64_t, Canon> canon_;  // seq -> first fingerprint seen
  std::uint64_t conflicts_ = 0;
  std::uint64_t records_ = 0;
  std::shared_ptr<std::optional<std::string>> first_conflict_ =
      std::make_shared<std::optional<std::string>>();
};

namespace invariants {

// -------------------------------------------------------------------------
// Liveness oracles
//
// Safety predicates above say "this must never happen"; liveness oracles say
// "this must happen by then". Each wraps the `eventually` combinator: the
// predicate passes silently while the condition is unmet and the deadline has
// not arrived, latches satisfied forever once the condition samples true, and
// reports a violation at the first sample at or past the deadline if it never
// did. Deadlines are absolute sim times, so the chaos engine arms recovery
// oracles as quiesce_time + recovery_bound after the last fault heals.
// -------------------------------------------------------------------------

/// Core liveness combinator: `condition` must sample true at or before
/// `deadline` (absolute sim time). Sticky once satisfied; reports `what`
/// plus the deadline on expiry. The condition is still consulted at the
/// expiring sample, so a recovery landing exactly on the deadline passes.
inline InvariantChecker::Predicate eventually(Simulator& sim, std::string what,
                                              SimTime deadline,
                                              std::function<bool()> condition) {
  auto satisfied = std::make_shared<bool>(false);
  return [&sim, what = std::move(what), deadline,
          condition = std::move(condition),
          satisfied]() -> std::optional<std::string> {
    if (*satisfied) return std::nullopt;
    if (condition()) {
      *satisfied = true;
      return std::nullopt;
    }
    if (sim.now() >= deadline) {
      return what + " not achieved by t=" + std::to_string(deadline) + "us";
    }
    return std::nullopt;
  };
}

/// Raft liveness: some node leads by `deadline` (re-election after a crash
/// or partition heal). Duck-typed over is_leader().
template <typename Node>
InvariantChecker::Predicate leader_elected_by(Simulator& sim,
                                              std::vector<Node*> nodes,
                                              SimTime deadline) {
  return eventually(sim, "leader election", deadline,
                    [nodes = std::move(nodes)] {
                      for (const Node* n : nodes) {
                        if (n->is_leader()) return true;
                      }
                      return false;
                    });
}

/// State-machine liveness: at least `min_nodes` nodes have executed
/// `target_executed`+ operations by `deadline` (PBFT resumes committing
/// after a heal). Duck-typed over executed_count().
template <typename Node>
InvariantChecker::Predicate commits_resume_by(Simulator& sim,
                                              std::vector<Node*> nodes,
                                              std::uint64_t target_executed,
                                              std::size_t min_nodes,
                                              SimTime deadline) {
  return eventually(
      sim,
      "commit progress (" + std::to_string(min_nodes) + " nodes at " +
          std::to_string(target_executed) + "+ executions)",
      deadline, [nodes = std::move(nodes), target_executed, min_nodes] {
        std::size_t at_target = 0;
        for (const Node* n : nodes) {
          if (n->executed_count() >= target_executed) ++at_target;
        }
        return at_target >= min_nodes;
      });
}

/// Dissemination liveness: every online node has seen message `id` by
/// `deadline` (gossip coverage converges after churn/loss). Duck-typed over
/// online() and has_seen(id).
template <typename Node>
InvariantChecker::Predicate coverage_converges_by(Simulator& sim,
                                                  std::vector<Node*> nodes,
                                                  std::uint64_t id,
                                                  SimTime deadline) {
  return eventually(sim, "full gossip coverage of message " + std::to_string(id),
                    deadline, [nodes = std::move(nodes), id] {
                      for (const Node* n : nodes) {
                        if (n->online() && !n->has_seen(id)) return false;
                      }
                      return true;
                    });
}

/// Chain liveness: best-tip heights across nodes agree to within
/// `max_height_gap` by `deadline` (forks resolve after a partition heals).
/// Duck-typed over tree().best_height().
template <typename Node>
InvariantChecker::Predicate tips_converge_by(Simulator& sim,
                                             std::vector<Node*> nodes,
                                             std::uint64_t max_height_gap,
                                             SimTime deadline) {
  return eventually(
      sim, "chain tip convergence (gap <= " + std::to_string(max_height_gap) + ")",
      deadline, [nodes = std::move(nodes), max_height_gap] {
        if (nodes.empty()) return true;
        std::uint64_t lo = ~0ull, hi = 0;
        for (const Node* n : nodes) {
          const std::uint64_t h = n->tree().best_height();
          lo = h < lo ? h : lo;
          hi = h > hi ? h : hi;
        }
        return hi - lo <= max_height_gap;
      });
}

/// Generic counter oracle: `value()` reaches `target` by `deadline`
/// (e.g. Kademlia lookup successes after churn; wire value() to the
/// scenario's success tally). `what` names the count in the violation.
inline InvariantChecker::Predicate count_reaches(
    Simulator& sim, std::string what, std::function<std::uint64_t()> value,
    std::uint64_t target, SimTime deadline) {
  return eventually(sim, what + " >= " + std::to_string(target), deadline,
                    [value = std::move(value), target] {
                      return value() >= target;
                    });
}

/// Raft election safety: at most one leader per term. Duck-typed over any
/// node with is_leader() / term() / index(); remembers which index claimed
/// each term across samples, so two distinct claimants of one term trip it
/// even if they lead at different sample instants.
template <typename Node>
InvariantChecker::Predicate single_leader_per_term(std::vector<Node*> nodes) {
  auto claimed = std::make_shared<std::map<std::uint64_t, std::size_t>>();
  return [nodes = std::move(nodes), claimed]() -> std::optional<std::string> {
    for (const Node* n : nodes) {
      if (!n->is_leader()) continue;
      const auto [it, inserted] = claimed->emplace(n->term(), n->index());
      if (!inserted && it->second != n->index()) {
        return "term " + std::to_string(n->term()) + " claimed by node " +
               std::to_string(it->second) + " and node " +
               std::to_string(n->index());
      }
    }
    return std::nullopt;
  };
}

/// Chain convergence: the spread between the highest and lowest best-chain
/// height across nodes stays within `max_height_gap` blocks. Register (or
/// arm) this only once the network is healed — during a partition the sides
/// legitimately diverge. Duck-typed over any node with tree().best_height().
template <typename Node>
InvariantChecker::Predicate chain_tips_converge(std::vector<Node*> nodes,
                                                std::uint64_t max_height_gap) {
  return [nodes = std::move(nodes),
          max_height_gap]() -> std::optional<std::string> {
    if (nodes.empty()) return std::nullopt;
    std::uint64_t lo = ~0ull, hi = 0;
    for (const Node* n : nodes) {
      const std::uint64_t h = n->tree().best_height();
      lo = h < lo ? h : lo;
      hi = h > hi ? h : hi;
    }
    if (hi - lo > max_height_gap) {
      return "tip heights diverge by " + std::to_string(hi - lo) +
             " blocks (max " + std::to_string(max_height_gap) + ")";
    }
    return std::nullopt;
  };
}

}  // namespace invariants

}  // namespace decentnet::sim
