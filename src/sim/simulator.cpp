#include "sim/simulator.hpp"

#include <limits>
#include <stdexcept>
#include <utility>

namespace decentnet::sim {

EventHandle Simulator::schedule_at(SimTime when, Callback fn) {
  if (when < now_) when = now_;
  auto alive = std::make_shared<bool>(true);
  queue_.push(Event{when, seq_++, std::move(fn), alive});
  return EventHandle(std::move(alive));
}

EventHandle Simulator::schedule_periodic(SimDuration initial_delay,
                                         SimDuration period, Callback fn) {
  if (period <= 0) throw std::invalid_argument("periodic event needs period > 0");
  // One shared liveness flag governs the whole series; each firing re-arms
  // the next occurrence under the same flag. The scheduled event holds `arm`
  // strongly while `arm`'s own closure holds it weakly, so cancelling the
  // series lets the whole chain be reclaimed.
  auto series = std::make_shared<bool>(true);
  auto arm = std::make_shared<std::function<void(SimTime)>>();
  std::weak_ptr<std::function<void(SimTime)>> weak_arm = arm;
  *arm = [this, period, fn = std::move(fn), series, weak_arm](SimTime when) {
    auto strong = weak_arm.lock();
    schedule_at(when, [this, period, fn, series, strong] {
      if (!*series) return;
      fn();
      if (*series && strong) (*strong)(now_ + period);
    });
  };
  (*arm)(now_ + (initial_delay < 0 ? 0 : initial_delay));
  return EventHandle(std::move(series));
}

bool Simulator::pop_one() {
  while (!queue_.empty()) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    if (!*ev.alive) continue;  // cancelled
    *ev.alive = false;         // fired
    now_ = ev.when;
    ev.fn();
    ++processed_;
    return true;
  }
  return false;
}

std::size_t Simulator::run_until(SimTime until) {
  std::size_t n = 0;
  while (!queue_.empty()) {
    // Skip cancelled events cheaply without advancing the clock.
    if (!*queue_.top().alive) {
      queue_.pop();
      continue;
    }
    if (queue_.top().when > until) break;
    if (pop_one()) ++n;
  }
  if (now_ < until) now_ = until;
  return n;
}

std::size_t Simulator::run_all() {
  std::size_t n = 0;
  while (pop_one()) ++n;
  return n;
}

void Simulator::clear() {
  while (!queue_.empty()) queue_.pop();
}

}  // namespace decentnet::sim
