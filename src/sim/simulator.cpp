#include "sim/simulator.hpp"

#include <limits>
#include <stdexcept>
#include <utility>

namespace decentnet::sim {

void Simulator::push_event(SimTime when, Callback fn,
                           std::shared_ptr<bool> alive, const char* tag) {
  if (when < now_) when = now_;
  const std::uint64_t id = seq_++;
  if (trace_) {
    trace_->record({now_, "sched", tag ? tag : "", id,
                    static_cast<std::uint64_t>(when), 0, 0});
  }
  queue_.push(Event{when, id, std::move(fn), std::move(alive), tag});
}

EventHandle Simulator::schedule_at(SimTime when, Callback fn,
                                   const char* tag) {
  auto alive = std::make_shared<bool>(true);
  EventHandle handle(alive);
  push_event(when, std::move(fn), std::move(alive), tag);
  return handle;
}

void Simulator::post_at(SimTime when, Callback fn, const char* tag) {
  push_event(when, std::move(fn), nullptr, tag);
}

EventHandle Simulator::schedule_periodic(SimDuration initial_delay,
                                         SimDuration period, Callback fn,
                                         const char* tag) {
  if (period <= 0) throw std::invalid_argument("periodic event needs period > 0");
  // One shared liveness flag governs the whole series; each firing re-arms
  // the next occurrence under the same flag. The scheduled event holds `arm`
  // strongly while `arm`'s own closure holds it weakly, so cancelling the
  // series lets the whole chain be reclaimed. The per-firing events are
  // detached (post_at): cancellation goes through the series flag alone.
  auto series = std::make_shared<bool>(true);
  auto arm = std::make_shared<std::function<void(SimTime)>>();
  std::weak_ptr<std::function<void(SimTime)>> weak_arm = arm;
  *arm = [this, period, tag, fn = std::move(fn), series,
          weak_arm](SimTime when) {
    auto strong = weak_arm.lock();
    post_at(
        when,
        [this, period, fn, series, strong] {
          if (!*series) return;
          fn();
          if (*series && strong) (*strong)(now_ + period);
        },
        tag);
  };
  (*arm)(now_ + (initial_delay < 0 ? 0 : initial_delay));
  return EventHandle(std::move(series));
}

bool Simulator::pop_one() {
  while (!queue_.empty()) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    if (ev.alive) {
      if (!*ev.alive) {  // cancelled
        if (trace_) {
          trace_->record({now_, "cancel", ev.tag ? ev.tag : "", ev.seq, 0, 0, 0});
        }
        continue;
      }
      *ev.alive = false;  // fired
    }
    now_ = ev.when;
    if (trace_) {
      trace_->record({now_, "fire", ev.tag ? ev.tag : "", ev.seq, 0, 0, 0});
    }
    ev.fn();
    ++processed_;
    return true;
  }
  return false;
}

std::size_t Simulator::run_until(SimTime until) {
  std::size_t n = 0;
  while (!queue_.empty()) {
    // Skip cancelled events cheaply without advancing the clock.
    const Event& top = queue_.top();
    if (top.alive && !*top.alive) {
      if (trace_) {
        trace_->record({now_, "cancel", top.tag ? top.tag : "", top.seq, 0, 0, 0});
      }
      queue_.pop();
      continue;
    }
    if (top.when > until) break;
    if (pop_one()) ++n;
  }
  if (now_ < until) now_ = until;
  return n;
}

std::size_t Simulator::run_all() {
  std::size_t n = 0;
  while (pop_one()) ++n;
  return n;
}

void Simulator::clear() {
  while (!queue_.empty()) queue_.pop();
}

}  // namespace decentnet::sim
