#include "sim/simulator.hpp"

#include <stdexcept>
#include <utility>

namespace decentnet::sim {

std::uint32_t Simulator::alloc_slot() {
  if (!free_.empty()) {
    const std::uint32_t slot = free_.back();
    free_.pop_back();
    return slot;
  }
  arena_.emplace_back();
  return static_cast<std::uint32_t>(arena_.size() - 1);
}

void Simulator::release_slot(std::uint32_t slot) {
  Event& ev = arena_[slot];
  ev.fn.reset();
  ev.tag = nullptr;
  ev.state = State::kFree;
  ++ev.gen;  // outstanding handles to this slot read as invalid from here on
  free_.push_back(slot);
}

void Simulator::heap_push(HeapEntry e) {
  // Hole insertion: slide parents down into the hole and place the new
  // entry once, instead of a 3-move swap per level.
  heap_.push_back(e);
  std::size_t i = heap_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!e.before(heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void Simulator::heap_pop_min() {
  const HeapEntry last = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n == 0) return;
  // Hole percolation with the displaced last entry.
  std::size_t i = 0;
  for (;;) {
    const std::size_t first_child = 4 * i + 1;
    if (first_child >= n) break;
    std::size_t best = first_child;
    const std::size_t last_child =
        first_child + 4 < n ? first_child + 4 : n;
    for (std::size_t c = first_child + 1; c < last_child; ++c) {
      if (heap_[c].before(heap_[best])) best = c;
    }
    if (!heap_[best].before(last)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = last;
}

std::uint32_t Simulator::push_event(SimTime when, Callback fn,
                                    const char* tag) {
  if (when < now_) when = now_;
  const std::uint64_t id = seq_++;
  if (trace_) {
    trace_->record({now_, "sched", tag ? tag : "", id,
                    static_cast<std::uint64_t>(when), 0, 0});
  }
  const std::uint32_t slot = alloc_slot();
  Event& ev = arena_[slot];
  ev.when = when;
  ev.fn = std::move(fn);
  ev.tag = tag;
  ev.state = State::kPending;
  heap_push({when, id, slot});
  return slot;
}

EventHandle Simulator::schedule_at(SimTime when, Callback fn,
                                   const char* tag) {
  const std::uint32_t slot = push_event(when, std::move(fn), tag);
  return EventHandle(this, slot, arena_[slot].gen);
}

void Simulator::post_at(SimTime when, Callback fn, const char* tag) {
  push_event(when, std::move(fn), tag);
}

void Simulator::arm_periodic(std::uint32_t slot, std::uint32_t gen,
                             SimTime when, const char* tag) {
  // Each firing is a detached event with a 16-byte {this-free} capture; the
  // series callback itself stays parked in the series slot.
  post_at(when, [this, slot, gen] { fire_periodic(slot, gen); }, tag);
}

void Simulator::fire_periodic(std::uint32_t slot, std::uint32_t gen) {
  {
    const Event& ev = arena_[slot];
    if (ev.gen != gen || ev.state != State::kSeries) return;  // cancelled
  }
  // Move the callback out before invoking: the callback may schedule events,
  // which can grow (reallocate) the arena under us.
  Callback fn = std::move(arena_[slot].fn);
  const SimDuration period = static_cast<SimDuration>(arena_[slot].when);
  const char* tag = arena_[slot].tag;
  fn();
  // The callback may have cancelled its own series (or cleared the kernel);
  // re-check before parking the callback back and re-arming.
  Event& ev = arena_[slot];
  if (ev.gen != gen || ev.state != State::kSeries) return;
  ev.fn = std::move(fn);
  arm_periodic(slot, gen, now_ + period, tag);
}

EventHandle Simulator::schedule_periodic(SimDuration initial_delay,
                                         SimDuration period, Callback fn,
                                         const char* tag) {
  if (period <= 0) throw std::invalid_argument("periodic event needs period > 0");
  const std::uint32_t slot = alloc_slot();
  Event& ev = arena_[slot];
  ev.when = period;  // series slots park the period here (never heap-ordered)
  ev.fn = std::move(fn);
  ev.tag = tag;
  ev.state = State::kSeries;
  const std::uint32_t gen = ev.gen;
  arm_periodic(slot, gen, now_ + (initial_delay < 0 ? 0 : initial_delay), tag);
  return EventHandle(this, slot, gen);
}

void Simulator::reclaim_cancelled_top(const HeapEntry& top) {
  if (trace_) {
    const Event& ev = arena_[top.slot];
    trace_->record({now_, "cancel", ev.tag ? ev.tag : "", top.seq, 0, 0, 0});
  }
  heap_pop_min();
  release_slot(top.slot);
}

void Simulator::fire_top(const HeapEntry& top) {
  // Detach the callback and recycle the slot *before* invoking it: inside
  // its own callback a handle reads invalid and cancel() is a no-op (the
  // generation already moved on), and the callback is free to schedule new
  // events even though that may reallocate the arena.
  Event& ev = arena_[top.slot];
  Callback fn = std::move(ev.fn);
  const char* tag = ev.tag;
  heap_pop_min();
  release_slot(top.slot);
  now_ = top.when;
  if (trace_) {
    trace_->record({now_, "fire", tag ? tag : "", top.seq, 0, 0, 0});
  }
  fn();
  ++processed_;
}

std::size_t Simulator::run_until(SimTime until) {
  if (profiler_ != nullptr || telemetry_ != nullptr) [[unlikely]] {
    return run_until_instrumented(until);
  }
  std::size_t n = 0;
  while (!heap_.empty()) {
    const HeapEntry top = heap_[0];
    // Skip cancelled events cheaply without advancing the clock (even past
    // the horizon — reclamation is what empties the queue).
    if (arena_[top.slot].state == State::kCancelled) {
      reclaim_cancelled_top(top);
      continue;
    }
    if (top.when > until) break;
    fire_top(top);
    ++n;
  }
  if (now_ < until) now_ = until;
  return n;
}

std::size_t Simulator::run_all() {
  if (profiler_ != nullptr || telemetry_ != nullptr) [[unlikely]] {
    return run_all_instrumented();
  }
  std::size_t n = 0;
  while (!heap_.empty()) {
    const HeapEntry top = heap_[0];
    if (arena_[top.slot].state == State::kCancelled) {
      reclaim_cancelled_top(top);
      continue;
    }
    fire_top(top);
    ++n;
  }
  return n;
}

void Simulator::clear() {
  for (const HeapEntry& e : heap_) release_slot(e.slot);
  heap_.clear();
  // Periodic series slots are parked outside the heap; invalidate them too
  // so no orphaned handle can resurrect a series.
  for (std::uint32_t i = 0; i < arena_.size(); ++i) {
    if (arena_[i].state == State::kSeries) release_slot(i);
  }
}

}  // namespace decentnet::sim
