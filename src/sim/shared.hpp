// Refcounted immutable payloads for zero-copy message fan-out.
//
// Network::send used to copy the typed payload into every delivery closure,
// so broadcasting one block over a degree-d mesh deep-copied its tx vector
// O(N·d) times. Shared<T> allocates the payload once per broadcast; each
// delivery holds an 8-byte PayloadRef that bumps an atomic refcount.
// The count is atomic because sharded runs (sim/sharding.hpp) relay one
// payload across shard workers: copies bump with a relaxed fetch_add (no
// ordering needed to take a reference), and release uses acq_rel so the
// last dropper observes every other shard's writes before destroying the
// value. Uncontended atomic RMW is a handful of cycles on the lock-free
// fast path, noise next to the delivery closure move it rides along with.
//
// PayloadRef is the type-erased form carried inside net::Message. It is one
// pointer wide on purpose: the delivery closure (Host** + Counter* + Message)
// must keep fitting InlineFn<64>'s inline buffer, so Message cannot grow.
// The value pointer and the deleter live in the control block, not the ref.
#pragma once

#include <atomic>
#include <cstdint>
#include <utility>

namespace decentnet::sim {

/// Control block header. Holder<T> appends the value in the same allocation.
struct SharedBlock {
  std::atomic<std::uint32_t> refs{1};
  void (*destroy)(SharedBlock*) = nullptr;
  const void* value = nullptr;
};

namespace detail {

/// Payload allocations on this thread. Thread-local (not atomic) so parallel
/// run_points replications never contend; tests read the delta around a
/// broadcast to prove "one allocation per broadcast, not per neighbor".
inline std::uint64_t& shared_allocs() {
  thread_local std::uint64_t count = 0;
  return count;
}

template <typename T>
struct Holder final : SharedBlock {
  T value_;

  template <typename... Args>
  explicit Holder(Args&&... args) : value_(std::forward<Args>(args)...) {
    value = &value_;
    destroy = [](SharedBlock* b) { delete static_cast<Holder*>(b); };
  }
};

}  // namespace detail

inline std::uint64_t shared_payload_allocations() {
  return detail::shared_allocs();
}

/// Type-erased owning reference to a SharedBlock. Exactly one pointer wide.
class PayloadRef {
 public:
  PayloadRef() = default;
  /// Adopts `block` (its refcount already accounts for this reference).
  explicit PayloadRef(SharedBlock* block) : block_(block) {}

  PayloadRef(const PayloadRef& o) : block_(o.block_) {
    if (block_ != nullptr) {
      block_->refs.fetch_add(1, std::memory_order_relaxed);
    }
  }
  PayloadRef(PayloadRef&& o) noexcept : block_(o.block_) {
    o.block_ = nullptr;
  }
  PayloadRef& operator=(const PayloadRef& o) {
    PayloadRef tmp(o);
    std::swap(block_, tmp.block_);
    return *this;
  }
  PayloadRef& operator=(PayloadRef&& o) noexcept {
    std::swap(block_, o.block_);
    return *this;
  }
  ~PayloadRef() { reset(); }

  void reset() {
    if (block_ != nullptr &&
        block_->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      block_->destroy(block_);
    }
    block_ = nullptr;
  }

  const void* get() const { return block_ != nullptr ? block_->value : nullptr; }
  std::uint32_t use_count() const {
    return block_ != nullptr ? block_->refs.load(std::memory_order_relaxed)
                             : 0;
  }
  explicit operator bool() const { return block_ != nullptr; }

 private:
  SharedBlock* block_ = nullptr;
};

/// Immutable shared payload of type T. Copies alias the same value; the value
/// is destroyed when the last copy (including in-flight PayloadRefs) drops.
template <typename T>
class Shared {
 public:
  Shared() = default;
  /// Re-wrap a type-erased ref whose block is known to hold a T (the caller
  /// — payload_shared — checks the Message type tag first).
  explicit Shared(PayloadRef ref) : ref_(std::move(ref)) {}

  template <typename... Args>
  static Shared make(Args&&... args) {
    ++detail::shared_allocs();
    return Shared(
        PayloadRef(new detail::Holder<T>(std::forward<Args>(args)...)));
  }

  const T* get() const { return static_cast<const T*>(ref_.get()); }
  const T& operator*() const { return *get(); }
  const T* operator->() const { return get(); }
  std::uint32_t use_count() const { return ref_.use_count(); }
  explicit operator bool() const { return static_cast<bool>(ref_); }

  const PayloadRef& ref() const& { return ref_; }
  PayloadRef ref() && { return std::move(ref_); }

 private:
  PayloadRef ref_;
};

template <typename T, typename... Args>
Shared<T> make_shared_payload(Args&&... args) {
  return Shared<T>::make(std::forward<Args>(args)...);
}

}  // namespace decentnet::sim
