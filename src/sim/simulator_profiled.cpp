// Instrumented drain loops, deliberately in their own translation unit.
//
// These are separate copies of run_until/run_all — selected once per run_*
// call, not per event — used whenever a profiler and/or telemetry is
// installed, so installing neither leaves the hot loops' codegen untouched.
// Two earlier shapes measurably regressed the fill/drain micros with the
// profiler *disabled*:
//   * a per-event `if (profiler_)` inside fire_top perturbed GCC's inlining
//     of the fire path;
//   * defining these loops inside simulator.cpp shifted the unit-growth
//     inlining budget for the whole TU (alloc_slot's fast path, for one,
//     grew a full spill prologue).
// Keeping them here leaves simulator.cpp compiling to the same code as
// before the profiler existed, give or take the two entry checks.
//
// The profiler timer brackets all of fire_top, so per-tag wall time includes
// the kernel's own pop/recycle work, not just the callback body.
//
// Telemetry sampling happens *between* events: before firing an event past a
// cadence boundary, every boundary strictly before it is sampled, so a
// boundary-T sample always reflects the state after all events at t <= T
// have run (events at exactly T fire before the T sample). The per-event
// cost when telemetry is on but not yet due is one load + compare.
#include "sim/profiler.hpp"
#include "sim/simulator.hpp"
#include "sim/telemetry.hpp"

namespace decentnet::sim {

std::size_t Simulator::run_until_instrumented(SimTime until) {
  Profiler* const prof = profiler_;
  Telemetry* const tel = telemetry_;
  std::size_t n = 0;
  while (!heap_.empty()) {
    const HeapEntry top = heap_[0];
    if (arena_[top.slot].state == State::kCancelled) {
      reclaim_cancelled_top(top);
      continue;
    }
    if (top.when > until) break;
    if (tel != nullptr && top.when > tel->next_due()) {
      tel->advance_to(top.when - 1);
    }
    if (prof != nullptr) {
      const char* tag = arena_[top.slot].tag;
      const std::uint64_t t0 = Profiler::now_ns();
      fire_top(top);
      prof->record(tag, Profiler::now_ns() - t0);
    } else {
      fire_top(top);
    }
    ++n;
  }
  if (now_ < until) now_ = until;
  if (tel != nullptr) tel->advance_to(until);
  return n;
}

std::size_t Simulator::run_all_instrumented() {
  Profiler* const prof = profiler_;
  Telemetry* const tel = telemetry_;
  std::size_t n = 0;
  while (!heap_.empty()) {
    const HeapEntry top = heap_[0];
    if (arena_[top.slot].state == State::kCancelled) {
      reclaim_cancelled_top(top);
      continue;
    }
    if (tel != nullptr && top.when > tel->next_due()) {
      tel->advance_to(top.when - 1);
    }
    if (prof != nullptr) {
      const char* tag = arena_[top.slot].tag;
      const std::uint64_t t0 = Profiler::now_ns();
      fire_top(top);
      prof->record(tag, Profiler::now_ns() - t0);
    } else {
      fire_top(top);
    }
    ++n;
  }
  if (tel != nullptr) tel->advance_to(now_);
  return n;
}

}  // namespace decentnet::sim
