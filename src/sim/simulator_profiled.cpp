// Profiled drain loops, deliberately in their own translation unit.
//
// These are separate copies of run_until/run_all — selected once per run_*
// call, not per event — so installing no profiler leaves the hot loops'
// codegen untouched. Two earlier shapes measurably regressed the fill/drain
// micros with the profiler *disabled*:
//   * a per-event `if (profiler_)` inside fire_top perturbed GCC's inlining
//     of the fire path;
//   * defining these loops inside simulator.cpp shifted the unit-growth
//     inlining budget for the whole TU (alloc_slot's fast path, for one,
//     grew a full spill prologue).
// Keeping them here leaves simulator.cpp compiling to the same code as
// before the profiler existed, give or take the two entry checks.
//
// The timer brackets all of fire_top, so per-tag wall time includes the
// kernel's own pop/recycle work, not just the callback body.
#include "sim/profiler.hpp"
#include "sim/simulator.hpp"

namespace decentnet::sim {

std::size_t Simulator::run_until_profiled(SimTime until) {
  std::size_t n = 0;
  while (!heap_.empty()) {
    const HeapEntry top = heap_[0];
    if (arena_[top.slot].state == State::kCancelled) {
      reclaim_cancelled_top(top);
      continue;
    }
    if (top.when > until) break;
    const char* tag = arena_[top.slot].tag;
    const std::uint64_t t0 = Profiler::now_ns();
    fire_top(top);
    profiler_->record(tag, Profiler::now_ns() - t0);
    ++n;
  }
  if (now_ < until) now_ = until;
  return n;
}

std::size_t Simulator::run_all_profiled() {
  std::size_t n = 0;
  while (!heap_.empty()) {
    const HeapEntry top = heap_[0];
    if (arena_[top.slot].state == State::kCancelled) {
      reclaim_cancelled_top(top);
      continue;
    }
    const char* tag = arena_[top.slot].tag;
    const std::uint64_t t0 = Profiler::now_ns();
    fire_top(top);
    profiler_->record(tag, Profiler::now_ns() - t0);
    ++n;
  }
  return n;
}

}  // namespace decentnet::sim
