// ExperimentHarness: the one way every bench and example wires itself up.
//
// The harness owns the experiment scope — root seed, CLI options, the shared
// MetricRegistry, an optional JSONL trace sink, a default Simulator — and the
// result pipeline: rows accumulate as named cells and are emitted twice, as
// the human-readable Table the benches always printed and as a
// machine-readable BENCH_<id>.json whose bytes are a pure function of the
// seed (the repo's perf trajectory).
//
// Canonical bench shape:
//
//   int main(int argc, char** argv) {
//     sim::ExperimentHarness ex("E1_dht_lookup", argc, argv, {.seed = 11});
//     ex.describe("E1: lookup latency", "paper claim...", "what we sweep...");
//     for (...) {
//       sim::Simulator simu(ex.seed());
//       ex.instrument(simu);     // no-op unless --trace / --profile given
//       net::Network netw(simu, ..., {}, &ex.metrics());
//       ... run ...
//       ex.add_row({{"profile", label}, {"p50_s", sim::Value(p50, 2)}});
//     }
//     return ex.finish();   // prints the table, writes BENCH_E1_dht_lookup.json
//   }
//
// CLI accepted by every harness binary: see the "Harness flags" table in
// README.md (the single authoritative list: --seed, --json, --no-json,
// --trace, --profile, --jobs, --param, --quiet, --help).
//
// Parallel replication (run_points): a bench that expresses its sweep as
// independent points gets --jobs for free. Every point runs with its own
// Simulator (constructed by the bench), its own MetricRegistry, and a
// deterministic seed; results are buffered per point and merged in
// submission order, so BENCH_<id>.json is byte-identical for any --jobs
// value. Tracing forces --jobs 1 (a single interleaved JSONL stream must
// stay deterministic).
//
// Wall-clock measurements (Value::timing) appear in the printed table but are
// excluded from the JSON so that BENCH_*.json stays byte-identical across
// runs with the same seed. The same rule covers --profile: the "profile" JSON
// key (kernel self-profiler output) carries wall-clock numbers and exists
// only when --profile was given, so the determinism byte-compares simply
// never enable it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/metrics.hpp"
#include "sim/profiler.hpp"
#include "sim/sharding.hpp"
#include "sim/simulator.hpp"
#include "sim/table.hpp"
#include "sim/telemetry.hpp"
#include "sim/trace.hpp"

namespace decentnet::sim {

/// One result cell: a tagged scalar that renders into both a table cell and
/// a JSON literal. Doubles carry a table precision; JSON always uses
/// shortest-round-trip formatting.
class Value {
 public:
  enum class Kind { Null, Bool, Int, Uint, Double, Str };

  Value() : kind_(Kind::Null) {}
  Value(bool b) : kind_(Kind::Bool), u_(b ? 1 : 0) {}
  Value(int v) : kind_(Kind::Int), i_(v) {}
  Value(unsigned v) : kind_(Kind::Uint), u_(v) {}
  Value(std::int64_t v) : kind_(Kind::Int), i_(v) {}
  Value(std::uint64_t v) : kind_(Kind::Uint), u_(v) {}
  Value(double v, int precision = 3)
      : kind_(Kind::Double), d_(v), precision_(precision) {}
  Value(const char* s) : kind_(Kind::Str), s_(s) {}
  Value(std::string s) : kind_(Kind::Str), s_(std::move(s)) {}

  /// A wall-clock-derived measurement: shown in the table, omitted from the
  /// JSON artifact (which must be deterministic in the seed).
  static Value timing(double v, int precision = 0) {
    Value val(v, precision);
    val.timing_ = true;
    return val;
  }

  Kind kind() const { return kind_; }
  bool is_timing() const { return timing_; }

  /// Render for the ASCII table.
  std::string to_cell() const;
  /// Render as a JSON literal (quoted/escaped for strings).
  std::string to_json() const;

 private:
  Kind kind_;
  bool timing_ = false;
  std::int64_t i_ = 0;
  std::uint64_t u_ = 0;
  double d_ = 0;
  int precision_ = 3;
  std::string s_;
};

struct ExperimentOptions {
  std::uint64_t seed = 1;
  std::string json_path;   // empty => "BENCH_<id>.json"
  std::string trace_path;  // empty => tracing disabled
  /// --stream-trace: write the trace through a bounded-memory
  /// StreamingTraceSink (fixed-size chunk flushes) instead of a buffered
  /// JsonlTraceSink, and spill per-shard records to disk during sharded
  /// runs (ShardedKernel::set_trace_spill). Byte-identical output either
  /// way; this is the memory knob for million-node traced runs.
  bool stream_trace = false;
  std::size_t jobs = 1;    // worker threads for run_points()
  /// Shard count for shard-aware benches (ShardedKernel decomposition).
  /// 1 = the legacy single-kernel path, bit-for-bit. The decomposition —
  /// not the thread count — decides results, so artifacts depend on
  /// sim_shards but never on sim_threads.
  std::size_t sim_shards = 1;
  /// Worker threads inside one sharded kernel (ShardedKernel::run_until).
  /// Purely a wall-clock knob: byte-identical output for any value.
  std::size_t sim_threads = 1;
  /// Set by benches that actually route --sim-shards into a ShardedKernel.
  /// Everywhere else the CLI rejects the flag outright — silently ignoring
  /// a decomposition knob would misreport what was measured.
  bool shard_aware = false;
  /// Chaos-aware benches (bench_e21_chaos) accept the three chaos flags;
  /// everywhere else the CLI rejects them, mirroring shard_aware.
  bool chaos_aware = false;
  /// --chaos-seeds N: fuzz seeds per protocol. 0 = the bench's default.
  std::size_t chaos_seeds = 0;
  /// --chaos-space FILE: JSON ChaosSpace overriding the built-in space.
  std::string chaos_space_path;
  /// --repro FILE: replay one ChaosRepro envelope instead of fuzzing.
  std::string repro_path;
  bool profile = false;    // kernel self-profiler ("profile" JSON key)
  /// --telemetry[=INTERVAL]: sim-time series sampling cadence, 0 = off (the
  /// default — golden traces and perf artifacts are untouched unless asked
  /// for). The bare flag samples every 100 ms of sim time.
  SimDuration telemetry_interval = 0;
  /// --telemetry-out PATH (empty => "TELEMETRY_<id>.jsonl").
  std::string telemetry_path;
  bool emit_json = true;
  bool quiet = false;
  bool help = false;
  /// Free-form `--param key=value` pairs (repeatable; later wins). Benches
  /// read them through cli_param()/cli_param_u64() to scale sweeps without
  /// bespoke flags (e.g. E20's `--param max_n=10000`).
  std::vector<std::pair<std::string, std::string>> params;
};

class ExperimentHarness;

/// Per-sweep-point execution scope handed to run_points() bodies. Each point
/// gets a private MetricRegistry and a row buffer; the harness merges both
/// in point-index order after all points finish, so results are independent
/// of --jobs and of thread scheduling. The body must route all output
/// through the scope (no direct harness mutation, no stdout) and build its
/// own Simulator — seeded with root_seed() to reproduce a bench's historical
/// single-seed sweep, or seed() for decorrelated replicas.
class PointScope {
 public:
  /// Index of this sweep point in [0, count).
  std::size_t index() const { return index_; }
  /// The experiment's root seed (same for every point).
  std::uint64_t root_seed() const { return root_seed_; }
  /// Deterministic per-point seed: splitmix of (root seed, index). Use for
  /// replica-style sweeps where points must be statistically independent.
  std::uint64_t seed() const { return point_seed_; }

  /// Point-private registry; merged into the harness registry afterwards.
  MetricRegistry& metrics() { return metrics_; }

  /// Trace sink for this point's Simulator (null unless tracing is enabled,
  /// which forces sequential execution).
  TraceSink* trace() const { return trace_; }

  /// Point-private profiler (null unless --profile); merged into the harness
  /// profiler in point-index order afterwards. Unlike tracing, profiling
  /// does not force sequential execution — samples are point-local.
  Profiler* profiler() const { return profiler_.get(); }

  /// Harness telemetry, or nullptr when --telemetry is off. Like tracing,
  /// telemetry writes one sequential series stream and forces --jobs 1.
  /// instrument() already attaches it; benches use this accessor to
  /// register their own protocol gauges after instrumenting.
  Telemetry* telemetry() const { return telemetry_; }

  /// Install this point's trace sink, profiler, and telemetry on `simu`
  /// (all no-ops unless the matching flag was given). The idiomatic first
  /// line of a run_points body after constructing its Simulator. Attaching
  /// telemetry resets its series registrations, so per-point gauges must be
  /// registered after this call.
  void instrument(Simulator& simu) const {
    simu.set_trace(trace_);
    simu.set_profiler(profiler_.get());
    if (telemetry_ != nullptr) telemetry_->attach(simu);
    else simu.set_telemetry(nullptr);
  }

  /// Sharded counterpart: the kernel buffers per-shard records/samples and
  /// merges them canonically, so artifacts stay byte-identical at any
  /// --sim-threads value. Under --stream-trace the per-shard buffers spill
  /// to disk instead (same merged bytes, bounded memory).
  void instrument(ShardedKernel& kernel) const {
    if (!trace_spill_.empty()) kernel.set_trace_spill(trace_spill_);
    kernel.set_trace(trace_);
    kernel.set_profiler(profiler_.get());
    kernel.set_telemetry(telemetry_);
  }

  /// Buffer one result row; rows from point i precede rows from point i+1
  /// in the final table/artifact regardless of completion order.
  void add_row(std::vector<std::pair<std::string, Value>> cells) {
    rows_.push_back(std::move(cells));
  }

 private:
  friend class ExperimentHarness;
  PointScope(std::size_t index, std::uint64_t root_seed,
             std::uint64_t point_seed, TraceSink* trace,
             std::string trace_spill, bool profile, Telemetry* telemetry)
      : index_(index),
        root_seed_(root_seed),
        point_seed_(point_seed),
        trace_(trace),
        trace_spill_(std::move(trace_spill)),
        profiler_(profile ? std::make_unique<Profiler>() : nullptr),
        telemetry_(telemetry) {}

  std::size_t index_;
  std::uint64_t root_seed_;
  std::uint64_t point_seed_;
  TraceSink* trace_;
  std::string trace_spill_;  // sharded spill prefix; empty = buffer in memory
  std::unique_ptr<Profiler> profiler_;
  Telemetry* telemetry_;  // harness-owned; non-null forces sequential points
  MetricRegistry metrics_;
  std::vector<std::vector<std::pair<std::string, Value>>> rows_;
};

class ExperimentHarness {
 public:
  /// Construct with explicit options (tests, embedding).
  explicit ExperimentHarness(std::string id, ExperimentOptions opts = {});

  /// Construct from CLI args. `defaults` carries the bench's historical
  /// seed. Prints usage and exits on --help or an unrecognized flag.
  ExperimentHarness(std::string id, int argc, char* const* argv,
                    ExperimentOptions defaults = {});

  ~ExperimentHarness();

  ExperimentHarness(const ExperimentHarness&) = delete;
  ExperimentHarness& operator=(const ExperimentHarness&) = delete;

  /// Parse harness flags into `opts` (pre-loaded with defaults). Returns
  /// false and sets `error` on an unrecognized or malformed argument.
  static bool parse_cli(int argc, char* const* argv, ExperimentOptions& opts,
                        std::string& error);
  static std::string usage(const std::string& prog, const std::string& id);

  const std::string& id() const { return id_; }
  const ExperimentOptions& options() const { return opts_; }

  /// Root seed for the experiment (bench default unless --seed overrode it).
  std::uint64_t seed() const { return opts_.seed; }

  /// --sim-shards / --sim-threads (see ExperimentOptions). Benches that
  /// support sharded kernels read these to size their ShardedKernel; the
  /// rest ignore them.
  std::size_t sim_shards() const { return opts_.sim_shards; }
  std::size_t sim_threads() const { return opts_.sim_threads; }

  /// --chaos-seeds with a bench default (chaos-aware benches only).
  std::size_t chaos_seeds(std::size_t fallback) const {
    return opts_.chaos_seeds == 0 ? fallback : opts_.chaos_seeds;
  }
  /// --chaos-space FILE path ("" = built-in space).
  const std::string& chaos_space_path() const { return opts_.chaos_space_path; }
  /// --repro FILE path ("" = fuzz mode).
  const std::string& repro_path() const { return opts_.repro_path; }
  /// Deterministic per-run seed stream: splitmix of (root seed, index).
  std::uint64_t seed_for(std::uint64_t index) const;

  /// Print the banner (unless --quiet) and record title/claim/method for the
  /// JSON artifact.
  void describe(std::string title, std::string claim, std::string method);

  /// The experiment-scoped registry. Pass `&metrics()` to Network (and thus
  /// to every component constructed over it) to aggregate layer metrics
  /// here; they are embedded in the JSON artifact when non-empty.
  MetricRegistry& metrics() { return metrics_; }

  /// The trace sink, or nullptr when tracing is off. Install on each kernel
  /// with instrument() (or `simulator.set_trace(harness.trace())`).
  TraceSink* trace() { return trace_.get(); }

  /// The kernel self-profiler, or nullptr unless --profile was given. Its
  /// report lands in the JSON artifact under "profile" (wall-clock numbers:
  /// excluded from determinism byte-compares by never passing --profile
  /// there).
  Profiler* profiler() { return profiler_.get(); }

  /// Sim-time telemetry, or nullptr unless --telemetry was given. Its
  /// series land in TELEMETRY_<id>.jsonl (or --telemetry-out). instrument()
  /// attaches it; benches register protocol gauges through this accessor
  /// *after* instrumenting (attach resets the registrations).
  Telemetry* telemetry() { return telemetry_.get(); }

  /// Install the harness trace sink, profiler, and telemetry on `simu`; all
  /// are no-ops unless the matching CLI flag enabled them. Benches that
  /// build one Simulator per row call this right after constructing it.
  void instrument(Simulator& simu) {
    simu.set_trace(trace_.get());
    simu.set_profiler(profiler_.get());
    if (telemetry_) telemetry_->attach(simu);
    else simu.set_telemetry(nullptr);
  }

  /// Sharded counterpart of instrument(Simulator&). Under --stream-trace
  /// this also routes the kernel's per-shard buffers to disk spills.
  void instrument(ShardedKernel& kernel) {
    if (!trace_spill().empty()) kernel.set_trace_spill(trace_spill());
    kernel.set_trace(trace_.get());
    kernel.set_profiler(profiler_.get());
    kernel.set_telemetry(telemetry_.get());
  }

  /// Lazily constructed default kernel, seeded with seed() and with the
  /// trace sink pre-installed. Sweep benches that need one kernel per row
  /// construct their own Simulators from seed()/seed_for() instead.
  Simulator& simulator();

  /// A swept/configured parameter recorded in the JSON "params" object.
  void set_param(const std::string& key, Value v);

  /// Value of a `--param key=value` CLI pair, or nullptr when absent (the
  /// last occurrence of a repeated key wins).
  const std::string* cli_param(const std::string& key) const;
  /// Integer-valued CLI param with a fallback; exits with a usage error on a
  /// non-integer value so typos fail loudly rather than run the default.
  std::uint64_t cli_param_u64(const std::string& key,
                              std::uint64_t fallback) const;

  /// Append one result row; cells keep insertion order. The table header is
  /// the union of row keys in first-seen order.
  void add_row(std::vector<std::pair<std::string, Value>> cells);

  /// Run `count` independent sweep points through `body`, on --jobs worker
  /// threads (default 1). Rows and metrics recorded through each PointScope
  /// are merged in point-index order once every point has finished, so the
  /// artifact bytes are a pure function of the seed for any --jobs value.
  /// Exceptions from a body are rethrown (lowest point index wins) after the
  /// pool drains. Tracing (--trace) forces sequential execution.
  void run_points(std::size_t count,
                  const std::function<void(PointScope&)>& body);

  /// The worker count run_points() will actually use (after the tracing
  /// override), for banners/tests.
  std::size_t effective_jobs() const;

  std::size_t row_count() const { return rows_.size(); }

  /// Print the results table (unless --quiet), write the JSON artifact
  /// (unless --no-json), and return 0. Idempotent.
  int finish();

  /// The JSON artifact body (also what finish() writes).
  std::string to_json() const;

 private:
  /// Spill-file prefix for sharded streaming traces ("" unless
  /// --stream-trace was given).
  std::string trace_spill() const {
    return opts_.stream_trace && !opts_.trace_path.empty()
               ? opts_.trace_path + ".spill"
               : std::string();
  }

  std::string id_;
  ExperimentOptions opts_;
  std::string title_, claim_, method_;
  MetricRegistry metrics_;
  std::unique_ptr<TraceSink> trace_;
  std::unique_ptr<Profiler> profiler_;
  std::unique_ptr<SeriesSink> telemetry_sink_;  // declared before telemetry_
  std::unique_ptr<Telemetry> telemetry_;
  std::unique_ptr<Simulator> sim_;
  std::vector<std::pair<std::string, Value>> params_;
  std::vector<std::vector<std::pair<std::string, Value>>> rows_;
  bool finished_ = false;
};

}  // namespace decentnet::sim
