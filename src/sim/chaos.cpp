#include "sim/chaos.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sim/jsonlite.hpp"

namespace decentnet::sim {

namespace {

constexpr std::uint64_t kChaosSalt = 0xC4A0'5E11'0F42'57ull;

// Fault inject/heal placement inside the horizon: inject in
// [kInjectLo, kInjectHi]·horizon, heal by kHealBy·horizon, so the tail
// [kHealBy, 1]·horizon is fault-free for recovery oracles.
constexpr double kInjectLo = 0.05;
constexpr double kInjectHi = 0.6;
constexpr double kHealBy = 0.8;

SimTime round_ms(double secs) {
  return static_cast<SimTime>(std::llround(secs * 1000.0)) * 1000;
}

std::string range_problem(const char* name, const ChaosRange& r, double max) {
  if (r.lo < 0 || r.hi < r.lo) {
    return std::string("chaos space: ") + name + " range [" +
           jsonlite::format_double(r.lo) + ", " + jsonlite::format_double(r.hi) +
           "] must satisfy 0 <= lo <= hi";
  }
  if (r.hi > max) {
    return std::string("chaos space: ") + name + " upper bound " +
           jsonlite::format_double(r.hi) + " exceeds " +
           jsonlite::format_double(max);
  }
  return {};
}

void parse_count(const jsonlite::JsonValue& family, const std::string& ctx,
                 const char* key, ChaosCount& out) {
  const jsonlite::JsonValue* v = family.find(key);
  if (!v) return;
  const auto& pair = v->as_array(ctx + " '" + key + "'");
  if (pair.size() != 2) {
    throw std::invalid_argument(ctx + " '" + key + "': expected [lo, hi]");
  }
  out.lo = static_cast<std::uint32_t>(pair[0].as_uint(ctx + " '" + key + "' lo"));
  out.hi = static_cast<std::uint32_t>(pair[1].as_uint(ctx + " '" + key + "' hi"));
}

void parse_range(const jsonlite::JsonValue& family, const std::string& ctx,
                 const char* key, ChaosRange& out) {
  const jsonlite::JsonValue* v = family.find(key);
  if (!v) return;
  const auto& pair = v->as_array(ctx + " '" + key + "'");
  if (pair.size() != 2) {
    throw std::invalid_argument(ctx + " '" + key + "': expected [lo, hi]");
  }
  out.lo = pair[0].as_number(ctx + " '" + key + "' lo");
  out.hi = pair[1].as_number(ctx + " '" + key + "' hi");
}

double sample_range(Rng& rng, const ChaosRange& r) {
  return r.lo == r.hi ? r.lo : rng.uniform(r.lo, r.hi);
}

std::uint32_t sample_count(Rng& rng, const ChaosCount& c) {
  if (c.hi <= c.lo) return c.lo;
  return static_cast<std::uint32_t>(
      rng.uniform_int(static_cast<std::int64_t>(c.lo),
                      static_cast<std::int64_t>(c.hi)));
}

}  // namespace

std::optional<std::string> ChaosSpace::validate() const {
  if (nodes < 2) return "chaos space: need at least 2 nodes";
  if (horizon < seconds(10)) return "chaos space: horizon under 10 s";
  const auto counts = {
      std::pair<const char*, const ChaosCount*>{"partitions", &partitions},
      {"partition_groups", &partition_groups},
      {"crashes", &crashes},
      {"loss_bursts", &loss_bursts},
      {"duplicate_windows", &duplicate_windows},
      {"reorder_windows", &reorder_windows},
      {"latency_faults", &latency_faults},
  };
  for (const auto& [name, c] : counts) {
    if (c->hi < c->lo) {
      return std::string("chaos space: ") + name + " count [" +
             std::to_string(c->lo) + ", " + std::to_string(c->hi) +
             "] inverted";
    }
  }
  if (partition_groups.lo < 2) {
    return "chaos space: partitions need at least 2 groups";
  }
  const double horizon_s = to_seconds(horizon);
  for (const auto& [name, r, max] :
       {std::tuple<const char*, const ChaosRange*, double>{
            "partition_len_s", &partition_len_s, horizon_s},
        {"crash_len_s", &crash_len_s, horizon_s},
        {"loss_p", &loss_p, 1.0},
        {"loss_len_s", &loss_len_s, horizon_s},
        {"duplicate_p", &duplicate_p, 1.0},
        {"duplicate_len_s", &duplicate_len_s, horizon_s},
        {"reorder_jitter_ms", &reorder_jitter_ms, 1e9},
        {"reorder_len_s", &reorder_len_s, horizon_s},
        {"latency_penalty_ms", &latency_penalty_ms, 1e9},
        {"latency_len_s", &latency_len_s, horizon_s}}) {
    const std::string problem = range_problem(name, *r, max);
    if (!problem.empty()) return problem;
  }
  return std::nullopt;
}

ChaosSpace ChaosSpace::from_json(std::string_view text) {
  const jsonlite::JsonValue doc = jsonlite::parse(text);
  if (doc.kind != jsonlite::JsonValue::Kind::Object) {
    throw std::invalid_argument("chaos space: document must be an object");
  }
  ChaosSpace space;
  if (const jsonlite::JsonValue* v = doc.find("nodes")) {
    space.nodes = v->as_uint("chaos space 'nodes'");
  }
  if (const jsonlite::JsonValue* v = doc.find("horizon_s")) {
    space.horizon = seconds(v->as_number("chaos space 'horizon_s'"));
  }
  if (const jsonlite::JsonValue* v = doc.find("partitions")) {
    parse_count(*v, "chaos space 'partitions'", "count", space.partitions);
    parse_count(*v, "chaos space 'partitions'", "groups",
                space.partition_groups);
    parse_range(*v, "chaos space 'partitions'", "len_s", space.partition_len_s);
  }
  if (const jsonlite::JsonValue* v = doc.find("crashes")) {
    parse_count(*v, "chaos space 'crashes'", "count", space.crashes);
    parse_range(*v, "chaos space 'crashes'", "len_s", space.crash_len_s);
  }
  if (const jsonlite::JsonValue* v = doc.find("loss")) {
    parse_count(*v, "chaos space 'loss'", "count", space.loss_bursts);
    parse_range(*v, "chaos space 'loss'", "p", space.loss_p);
    parse_range(*v, "chaos space 'loss'", "len_s", space.loss_len_s);
  }
  if (const jsonlite::JsonValue* v = doc.find("duplicate")) {
    parse_count(*v, "chaos space 'duplicate'", "count",
                space.duplicate_windows);
    parse_range(*v, "chaos space 'duplicate'", "p", space.duplicate_p);
    parse_range(*v, "chaos space 'duplicate'", "len_s", space.duplicate_len_s);
  }
  if (const jsonlite::JsonValue* v = doc.find("reorder")) {
    parse_count(*v, "chaos space 'reorder'", "count", space.reorder_windows);
    parse_range(*v, "chaos space 'reorder'", "jitter_ms",
                space.reorder_jitter_ms);
    parse_range(*v, "chaos space 'reorder'", "len_s", space.reorder_len_s);
  }
  if (const jsonlite::JsonValue* v = doc.find("latency")) {
    parse_count(*v, "chaos space 'latency'", "count", space.latency_faults);
    parse_range(*v, "chaos space 'latency'", "penalty_ms",
                space.latency_penalty_ms);
    parse_range(*v, "chaos space 'latency'", "len_s", space.latency_len_s);
  }
  if (const std::optional<std::string> problem = space.validate()) {
    throw std::invalid_argument(*problem);
  }
  return space;
}

SimTime plan_quiesce_time(const net::FaultPlan& plan) {
  SimTime quiesce = 0;
  for (const net::FaultEvent& ev : plan.events()) {
    quiesce = std::max(quiesce, std::max(ev.at, ev.heal_at));
  }
  return quiesce;
}

ChaosEngine::ChaosEngine(ChaosSpace space) : space_(space) {
  if (const std::optional<std::string> problem = space_.validate()) {
    throw std::invalid_argument(*problem);
  }
}

net::FaultPlan ChaosEngine::sample_plan(std::uint64_t seed) const {
  // One forked stream per fault family: widening (say) the crash count range
  // re-draws only crashes, not every family after it.
  Rng base(kChaosSalt ^ seed);
  const double horizon_s = to_seconds(space_.horizon);
  const double inject_lo = kInjectLo * horizon_s;
  const double inject_hi = kInjectHi * horizon_s;
  const SimTime heal_by = round_ms(kHealBy * horizon_s);
  net::FaultPlan plan;

  // Inject time + bounded heal time for a windowed fault.
  const auto window = [&](Rng& rng, const ChaosRange& len_s) {
    const SimTime at = round_ms(rng.uniform(inject_lo, inject_hi));
    SimTime heal = at + round_ms(sample_range(rng, len_s));
    heal = std::min(heal, heal_by);
    if (heal <= at) heal = at + 100'000;  // floor: 100 ms window
    return std::pair<SimTime, SimTime>{at, heal};
  };

  {
    Rng rng = base.fork(1);
    const std::uint32_t n = sample_count(rng, space_.partitions);
    for (std::uint32_t i = 0; i < n; ++i) {
      const auto [at, heal] = window(rng, space_.partition_len_s);
      const std::uint64_t max_groups =
          std::min<std::uint64_t>(space_.partition_groups.hi, space_.nodes);
      const std::uint64_t g = static_cast<std::uint64_t>(rng.uniform_int(
          static_cast<std::int64_t>(
              std::min<std::uint64_t>(space_.partition_groups.lo, max_groups)),
          static_cast<std::int64_t>(max_groups)));
      std::vector<std::unordered_set<std::uint64_t>> groups(g);
      for (std::uint64_t id = 1; id <= space_.nodes; ++id) {
        groups[rng.uniform_int(g)].insert(id);
      }
      std::erase_if(groups, [](const auto& s) { return s.empty(); });
      if (groups.size() < 2) {
        // All nodes drew the same group: peel the lowest id into its own
        // side so the event is a real split.
        std::uint64_t lowest = ~0ull;
        for (const std::uint64_t id : groups[0]) lowest = std::min(lowest, id);
        groups[0].erase(lowest);
        groups.push_back({lowest});
      }
      plan.partition(at, "chaos-p" + std::to_string(i), std::move(groups),
                     heal);
    }
  }

  {
    Rng rng = base.fork(2);
    std::uint32_t n = sample_count(rng, space_.crashes);
    n = std::min<std::uint32_t>(n, static_cast<std::uint32_t>(space_.nodes));
    // Distinct victims: overlapping crash/restart pairs on one node would
    // make the plan's semantics order-dependent.
    std::vector<std::size_t> victims(space_.nodes);
    for (std::size_t i = 0; i < victims.size(); ++i) victims[i] = i;
    rng.shuffle(victims);
    for (std::uint32_t i = 0; i < n; ++i) {
      const auto [at, restart_at] = window(rng, space_.crash_len_s);
      plan.crash(at, victims[i]);
      plan.restart(restart_at, victims[i]);
    }
  }

  {
    Rng rng = base.fork(3);
    const std::uint32_t n = sample_count(rng, space_.loss_bursts);
    for (std::uint32_t i = 0; i < n; ++i) {
      const auto [at, heal] = window(rng, space_.loss_len_s);
      plan.loss_burst(at, sample_range(rng, space_.loss_p), heal);
    }
  }

  {
    Rng rng = base.fork(4);
    const std::uint32_t n = sample_count(rng, space_.duplicate_windows);
    for (std::uint32_t i = 0; i < n; ++i) {
      const auto [at, heal] = window(rng, space_.duplicate_len_s);
      plan.duplicate_window(at, sample_range(rng, space_.duplicate_p), heal);
    }
  }

  {
    Rng rng = base.fork(5);
    const std::uint32_t n = sample_count(rng, space_.reorder_windows);
    for (std::uint32_t i = 0; i < n; ++i) {
      const auto [at, heal] = window(rng, space_.reorder_len_s);
      plan.reorder_window(
          at, round_ms(sample_range(rng, space_.reorder_jitter_ms) / 1000.0),
          heal);
    }
  }

  {
    Rng rng = base.fork(6);
    const std::uint32_t n = sample_count(rng, space_.latency_faults);
    for (std::uint32_t i = 0; i < n; ++i) {
      const auto [at, heal] = window(rng, space_.latency_len_s);
      const std::size_t node = rng.uniform_int(space_.nodes);
      plan.latency_penalty(
          at, node,
          round_ms(sample_range(rng, space_.latency_penalty_ms) / 1000.0),
          heal);
    }
  }

  // Present the timeline in inject order (stable: a restart samples at or
  // after its crash, so pairs stay adjacent-ordered for the shrinker).
  std::vector<net::FaultEvent> timeline(plan.events());
  std::stable_sort(timeline.begin(), timeline.end(),
                   [](const net::FaultEvent& a, const net::FaultEvent& b) {
                     return a.at < b.at;
                   });
  net::FaultPlan sorted;
  for (auto& ev : timeline) sorted.add(std::move(ev));
  return sorted;
}

ShrinkResult ChaosEngine::shrink(const net::FaultPlan& plan,
                                 std::uint64_t seed,
                                 const ChaosScenario& scenario,
                                 std::size_t max_runs) const {
  // A clause is the smallest unit the delta-debugger removes whole: one
  // event, except a crash travels with its matching restart so no probe
  // plan strands a node crashed forever (which fails for the wrong reason).
  const std::vector<net::FaultEvent>& events = plan.events();
  std::vector<std::vector<std::size_t>> clauses;
  std::vector<char> claimed(events.size(), 0);
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (claimed[i]) continue;
    std::vector<std::size_t> clause{i};
    if (events[i].kind == net::FaultEvent::Kind::Crash) {
      for (std::size_t j = i + 1; j < events.size(); ++j) {
        if (!claimed[j] && events[j].kind == net::FaultEvent::Kind::Restart &&
            events[j].node == events[i].node && events[j].at >= events[i].at) {
          claimed[j] = 1;
          clause.push_back(j);
          break;
        }
      }
    }
    claimed[i] = 1;
    clauses.push_back(std::move(clause));
  }

  ShrinkStats stats;
  stats.initial_clauses = clauses.size();

  // Mutable working copy of every event (phase 2 edits heal/restart times).
  std::vector<net::FaultEvent> work(events);
  std::vector<char> active(clauses.size(), 1);

  const auto build = [&] {
    net::FaultPlan probe;
    std::vector<char> keep(work.size(), 0);
    for (std::size_t c = 0; c < clauses.size(); ++c) {
      if (!active[c]) continue;
      for (const std::size_t idx : clauses[c]) keep[idx] = 1;
    }
    for (std::size_t i = 0; i < work.size(); ++i) {
      if (keep[i]) probe.add(work[i]);
    }
    return probe;
  };

  std::string violation;
  const auto fails = [&](const net::FaultPlan& probe) {
    ++stats.runs;
    const ChaosOutcome out = scenario(probe, seed);
    if (!out.ok) violation = out.violation;
    return !out.ok;
  };

  if (!fails(build())) {
    throw std::logic_error(
        "ChaosEngine::shrink: the plan does not fail the scenario");
  }

  // Phase 1: greedy clause removal to a fixpoint. Deterministic probe order
  // (ascending clause index each pass); every accepted removal restarts the
  // sweep so earlier clauses get re-probed against the smaller plan.
  bool changed = true;
  while (changed && stats.runs < max_runs) {
    changed = false;
    for (std::size_t c = 0; c < clauses.size() && stats.runs < max_runs; ++c) {
      if (!active[c]) continue;
      active[c] = 0;
      if (fails(build())) {
        changed = true;  // clause is irrelevant: keep it removed
      } else {
        active[c] = 1;
      }
    }
  }

  // Phase 2: halve each surviving window (heal_at for windowed faults, the
  // restart time for crash clauses) while the scenario still fails, down to
  // a 100 ms floor.
  constexpr SimDuration kFloor = 100'000;
  for (std::size_t c = 0; c < clauses.size() && stats.runs < max_runs; ++c) {
    if (!active[c]) continue;
    // The knob is the clause's window end: the paired restart if present,
    // else the event's heal_at.
    const std::size_t knob_idx =
        clauses[c].size() == 2 ? clauses[c][1] : clauses[c][0];
    const bool is_restart = clauses[c].size() == 2;
    const SimTime start = work[clauses[c][0]].at;
    for (;;) {
      if (stats.runs >= max_runs) break;
      SimTime& end = is_restart ? work[knob_idx].at : work[knob_idx].heal_at;
      if (end <= start) break;  // point event or never-healing window
      const SimDuration len = end - start;
      if (len / 2 < kFloor) break;
      const SimTime saved = end;
      end = start + len / 2;
      if (!fails(build())) {
        end = saved;
        break;
      }
      ++stats.window_trims;
    }
  }

  ShrinkResult result;
  result.plan = build();
  result.violation = violation;
  stats.final_clauses = 0;
  for (const char a : active) stats.final_clauses += a != 0;
  result.stats = stats;
  return result;
}

// ---------------------------------------------------------------------------
// ChaosRepro
// ---------------------------------------------------------------------------

namespace {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xF];
          out += kHex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string ChaosRepro::to_json() const {
  std::string plan_json = plan.to_json();
  while (!plan_json.empty() && plan_json.back() == '\n') plan_json.pop_back();
  std::string out = "{\n";
  out += "  \"protocol\": \"" + escape(protocol) + "\",\n";
  out += "  \"seed\": " + std::to_string(seed) + ",\n";
  out += "  \"violation\": \"" + escape(violation) + "\",\n";
  out += "  \"plan\": " + plan_json + "\n";
  out += "}\n";
  return out;
}

ChaosRepro ChaosRepro::from_json(std::string_view text) {
  const jsonlite::JsonValue doc = jsonlite::parse(text);
  ChaosRepro repro;
  repro.protocol =
      doc.at("protocol", "chaos repro").as_string("chaos repro 'protocol'");
  repro.seed = doc.at("seed", "chaos repro").as_uint("chaos repro 'seed'");
  repro.violation =
      doc.at("violation", "chaos repro").as_string("chaos repro 'violation'");
  repro.plan = net::FaultPlan::from_json_value(doc.at("plan", "chaos repro"));
  return repro;
}

}  // namespace decentnet::sim
