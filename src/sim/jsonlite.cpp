#include "sim/jsonlite.hpp"

#include <charconv>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <stdexcept>

namespace decentnet::sim::jsonlite {

namespace {

[[noreturn]] void fail(std::size_t offset, const std::string& what) {
  throw std::invalid_argument("JSON parse error at offset " +
                              std::to_string(offset) + ": " + what);
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail(pos_, "trailing characters after document");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail(pos_, "unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(pos_, std::string("expected '") + c + "', got '" + text_[pos_] +
                     "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return parse_string();
      case 't':
        if (consume_literal("true")) {
          JsonValue v;
          v.kind = JsonValue::Kind::Bool;
          v.boolean = true;
          return v;
        }
        fail(pos_, "expected 'true'");
      case 'f':
        if (consume_literal("false")) {
          JsonValue v;
          v.kind = JsonValue::Kind::Bool;
          return v;
        }
        fail(pos_, "expected 'false'");
      case 'n':
        if (consume_literal("null")) return JsonValue{};
        fail(pos_, "expected 'null'");
      default:
        return parse_number();
    }
  }

  JsonValue parse_object() {
    const std::size_t start = pos_;
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::Object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      if (peek() != '"') fail(pos_, "expected a quoted object key");
      std::string key = parse_string().str;
      skip_ws();
      expect(':');
      v.members.emplace_back(std::move(key), parse_value());
      skip_ws();
      const char sep = peek();
      if (sep == ',') {
        ++pos_;
        continue;
      }
      if (sep == '}') {
        ++pos_;
        return v;
      }
      fail(pos_, "expected ',' or '}' in object started at offset " +
                     std::to_string(start));
    }
  }

  JsonValue parse_array() {
    const std::size_t start = pos_;
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::Array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.items.push_back(parse_value());
      skip_ws();
      const char sep = peek();
      if (sep == ',') {
        ++pos_;
        continue;
      }
      if (sep == ']') {
        ++pos_;
        return v;
      }
      fail(pos_, "expected ',' or ']' in array started at offset " +
                     std::to_string(start));
    }
  }

  JsonValue parse_string() {
    expect('"');
    JsonValue v;
    v.kind = JsonValue::Kind::String;
    for (;;) {
      if (pos_ >= text_.size()) fail(pos_, "unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return v;
      if (c != '\\') {
        v.str += c;
        continue;
      }
      if (pos_ >= text_.size()) fail(pos_, "unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': v.str += '"'; break;
        case '\\': v.str += '\\'; break;
        case '/': v.str += '/'; break;
        case 'b': v.str += '\b'; break;
        case 'f': v.str += '\f'; break;
        case 'n': v.str += '\n'; break;
        case 'r': v.str += '\r'; break;
        case 't': v.str += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail(pos_, "truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= h - '0';
            else if (h >= 'a' && h <= 'f') code |= h - 'a' + 10;
            else if (h >= 'A' && h <= 'F') code |= h - 'A' + 10;
            else fail(pos_ - 1, "bad hex digit in \\u escape");
          }
          // The serializers only emit \u00XX control escapes; decode the
          // Latin-1 range and reject the rest rather than mis-decode.
          if (code > 0xFF) fail(pos_, "\\u escape above \\u00ff unsupported");
          v.str += static_cast<char>(code);
          break;
        }
        default:
          fail(pos_ - 1, std::string("unknown escape '\\") + esc + "'");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail(start, "expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double parsed = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      fail(start, "malformed number '" + token + "'");
    }
    JsonValue v;
    v.kind = JsonValue::Kind::Number;
    v.number = parsed;
    // Integral literals additionally keep their exact value: the double
    // alone cannot represent uint64 seeds above 2^53.
    const bool neg = token[0] == '-';
    const std::string_view digits =
        std::string_view(token).substr(neg ? 1 : 0);
    if (!digits.empty() &&
        digits.find_first_not_of("0123456789") == std::string::npos) {
      std::uint64_t mag = 0;
      const auto [p, ec] =
          std::from_chars(digits.data(), digits.data() + digits.size(), mag);
      if (ec == std::errc() && p == digits.data() + digits.size()) {
        v.is_integer = true;
        v.negative = neg && mag != 0;
        v.magnitude = mag;
      }
    }
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

[[noreturn]] void type_fail(std::string_view context, const char* wanted,
                            const char* got) {
  throw std::invalid_argument(std::string(context) + ": expected " + wanted +
                              ", got " + got);
}

}  // namespace

const char* JsonValue::kind_name() const {
  switch (kind) {
    case Kind::Null: return "null";
    case Kind::Bool: return "a boolean";
    case Kind::Number: return "a number";
    case Kind::String: return "a string";
    case Kind::Array: return "an array";
    case Kind::Object: return "an object";
  }
  return "unknown";
}

const JsonValue* JsonValue::find(std::string_view key) const {
  for (const auto& [k, v] : members) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key,
                               std::string_view context) const {
  if (kind != Kind::Object) type_fail(context, "an object", kind_name());
  if (const JsonValue* v = find(key)) return *v;
  throw std::invalid_argument(std::string(context) + ": missing key '" +
                              std::string(key) + "'");
}

double JsonValue::as_number(std::string_view context) const {
  if (kind != Kind::Number) type_fail(context, "a number", kind_name());
  return number;
}

std::int64_t JsonValue::as_int(std::string_view context) const {
  if (kind == Kind::Number && is_integer) {
    if (negative) {
      if (magnitude > 0x8000'0000'0000'0000ull) {
        type_fail(context, "an int64", "a smaller value");
      }
      return -static_cast<std::int64_t>(magnitude - 1) - 1;
    }
    if (magnitude > static_cast<std::uint64_t>(
                        std::numeric_limits<std::int64_t>::max())) {
      type_fail(context, "an int64", "a larger value");
    }
    return static_cast<std::int64_t>(magnitude);
  }
  const double v = as_number(context);
  if (v != std::floor(v)) type_fail(context, "an integer", "a fraction");
  return static_cast<std::int64_t>(v);
}

std::uint64_t JsonValue::as_uint(std::string_view context) const {
  if (kind == Kind::Number && is_integer) {
    if (negative) {
      type_fail(context, "a non-negative integer", "a negative one");
    }
    return magnitude;
  }
  const std::int64_t v = as_int(context);
  if (v < 0) type_fail(context, "a non-negative integer", "a negative one");
  return static_cast<std::uint64_t>(v);
}

bool JsonValue::as_bool(std::string_view context) const {
  if (kind != Kind::Bool) type_fail(context, "a boolean", kind_name());
  return boolean;
}

const std::string& JsonValue::as_string(std::string_view context) const {
  if (kind != Kind::String) type_fail(context, "a string", kind_name());
  return str;
}

const std::vector<JsonValue>& JsonValue::as_array(
    std::string_view context) const {
  if (kind != Kind::Array) type_fail(context, "an array", kind_name());
  return items;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::as_object(
    std::string_view context) const {
  if (kind != Kind::Object) type_fail(context, "an object", kind_name());
  return members;
}

JsonValue parse(std::string_view text) { return Parser(text).parse_document(); }

std::string format_double(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, res.ptr);
}

}  // namespace decentnet::sim::jsonlite
