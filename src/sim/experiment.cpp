#include "sim/experiment.hpp"

#include <atomic>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <exception>
#include <fstream>
#include <stdexcept>
#include <thread>

namespace decentnet::sim {

namespace {

std::string format_double(double v, int precision) {
  if (!std::isfinite(v)) return "nan";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string json_double(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, res.ptr);
}

std::string json_string(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      static const char* hex = "0123456789abcdef";
      out += "\\u00";
      out += hex[(c >> 4) & 0xF];
      out += hex[c & 0xF];
    } else {
      out += c;
    }
  }
  out += '"';
  return out;
}

}  // namespace

std::string Value::to_cell() const {
  switch (kind_) {
    case Kind::Null:
      return "-";
    case Kind::Bool:
      return u_ ? "true" : "false";
    case Kind::Int:
      return std::to_string(i_);
    case Kind::Uint:
      return std::to_string(u_);
    case Kind::Double:
      return format_double(d_, precision_);
    case Kind::Str:
      return s_;
  }
  return "-";
}

std::string Value::to_json() const {
  switch (kind_) {
    case Kind::Null:
      return "null";
    case Kind::Bool:
      return u_ ? "true" : "false";
    case Kind::Int:
      return std::to_string(i_);
    case Kind::Uint:
      return std::to_string(u_);
    case Kind::Double:
      return json_double(d_);
    case Kind::Str:
      return json_string(s_);
  }
  return "null";
}

bool ExperimentHarness::parse_cli(int argc, char* const* argv,
                                  ExperimentOptions& opts,
                                  std::string& error) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto want_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        error = std::string(flag) + " requires a value";
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--seed") {
      const char* v = want_value("--seed");
      if (!v) return false;
      char* end = nullptr;
      const unsigned long long parsed = std::strtoull(v, &end, 0);
      if (end == v || *end != '\0') {
        error = "--seed: not an integer: " + std::string(v);
        return false;
      }
      opts.seed = parsed;
    } else if (arg == "--json") {
      const char* v = want_value("--json");
      if (!v) return false;
      opts.json_path = v;
      opts.emit_json = true;
    } else if (arg == "--no-json") {
      opts.emit_json = false;
    } else if (arg == "--trace") {
      const char* v = want_value("--trace");
      if (!v) return false;
      opts.trace_path = v;
      opts.stream_trace = false;
    } else if (arg == "--stream-trace") {
      const char* v = want_value("--stream-trace");
      if (!v) return false;
      opts.trace_path = v;
      opts.stream_trace = true;
    } else if (arg == "--jobs") {
      const char* v = want_value("--jobs");
      if (!v) return false;
      char* end = nullptr;
      const unsigned long long parsed = std::strtoull(v, &end, 10);
      if (end == v || *end != '\0' || parsed == 0) {
        error = "--jobs: need a positive integer, got: " + std::string(v);
        return false;
      }
      opts.jobs = static_cast<std::size_t>(parsed);
    } else if (arg == "--sim-shards") {
      const char* v = want_value("--sim-shards");
      if (!v) return false;
      char* end = nullptr;
      const unsigned long long parsed = std::strtoull(v, &end, 10);
      if (end == v || *end != '\0' || parsed == 0) {
        error = "--sim-shards: need a positive integer, got: " +
                std::string(v);
        return false;
      }
      if (parsed > 1 && !opts.shard_aware) {
        error =
            "--sim-shards: this bench does not run on the sharded kernel "
            "(it would silently ignore the decomposition). Shard-aware "
            "benches: bench_e16_gossip, bench_e20_scale, "
            "bench_ablate_kernel.";
        return false;
      }
      opts.sim_shards = static_cast<std::size_t>(parsed);
    } else if (arg == "--sim-threads") {
      const char* v = want_value("--sim-threads");
      if (!v) return false;
      char* end = nullptr;
      const unsigned long long parsed = std::strtoull(v, &end, 10);
      if (end == v || *end != '\0' || parsed == 0) {
        error = "--sim-threads: need a positive integer, got: " +
                std::string(v);
        return false;
      }
      if (parsed > 1 && !opts.shard_aware) {
        error =
            "--sim-threads: this bench does not run on the sharded kernel. "
            "Shard-aware benches: bench_e16_gossip, bench_e20_scale, "
            "bench_ablate_kernel.";
        return false;
      }
      opts.sim_threads = static_cast<std::size_t>(parsed);
    } else if (arg == "--chaos-seeds") {
      const char* v = want_value("--chaos-seeds");
      if (!v) return false;
      char* end = nullptr;
      const unsigned long long parsed = std::strtoull(v, &end, 10);
      if (end == v || *end != '\0' || parsed == 0) {
        error = "--chaos-seeds: need a positive integer, got: " +
                std::string(v);
        return false;
      }
      if (!opts.chaos_aware) {
        error =
            "--chaos-seeds: this bench does not run the chaos engine. "
            "Chaos-aware benches: bench_e21_chaos.";
        return false;
      }
      opts.chaos_seeds = static_cast<std::size_t>(parsed);
    } else if (arg == "--chaos-space") {
      const char* v = want_value("--chaos-space");
      if (!v) return false;
      if (!opts.chaos_aware) {
        error =
            "--chaos-space: this bench does not run the chaos engine. "
            "Chaos-aware benches: bench_e21_chaos.";
        return false;
      }
      opts.chaos_space_path = v;
    } else if (arg == "--repro") {
      const char* v = want_value("--repro");
      if (!v) return false;
      if (!opts.chaos_aware) {
        error =
            "--repro: this bench does not run the chaos engine. "
            "Chaos-aware benches: bench_e21_chaos.";
        return false;
      }
      opts.repro_path = v;
    } else if (arg == "--telemetry" || arg.rfind("--telemetry=", 0) == 0) {
      // Attached-value form only (--telemetry=50ms): the bare flag must not
      // swallow a following positional and has a sensible default cadence.
      SimDuration interval = millis(100);
      if (arg.size() > std::strlen("--telemetry")) {
        const std::string v = arg.substr(std::strlen("--telemetry="));
        char* end = nullptr;
        const unsigned long long parsed = std::strtoull(v.c_str(), &end, 10);
        const std::string suffix = end ? end : "";
        if (end == v.c_str() || parsed == 0) {
          error = "--telemetry: need a positive interval (e.g. 100ms, 2s, "
                  "500us), got: " + v;
          return false;
        }
        if (suffix.empty() || suffix == "ms") {
          interval = static_cast<SimDuration>(parsed) * kMillisecond;
        } else if (suffix == "us") {
          interval = static_cast<SimDuration>(parsed) * kMicrosecond;
        } else if (suffix == "s") {
          interval = static_cast<SimDuration>(parsed) * kSecond;
        } else {
          error = "--telemetry: unknown unit '" + suffix +
                  "' (use us, ms, or s)";
          return false;
        }
      }
      opts.telemetry_interval = interval;
    } else if (arg == "--telemetry-out") {
      const char* v = want_value("--telemetry-out");
      if (!v) return false;
      opts.telemetry_path = v;
    } else if (arg == "--param") {
      const char* v = want_value("--param");
      if (!v) return false;
      const std::string pair = v;
      const std::size_t eq = pair.find('=');
      if (eq == std::string::npos || eq == 0) {
        error = "--param: expected key=value, got: " + pair;
        return false;
      }
      opts.params.emplace_back(pair.substr(0, eq), pair.substr(eq + 1));
    } else if (arg == "--profile") {
      opts.profile = true;
    } else if (arg == "--quiet") {
      opts.quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      opts.help = true;
    } else {
      error = "unrecognized argument: " + arg;
      return false;
    }
  }
  return true;
}

std::string ExperimentHarness::usage(const std::string& prog,
                                     const std::string& id) {
  return "usage: " + prog +
         " [--seed N] [--json PATH] [--no-json] [--trace PATH] "
         "[--stream-trace PATH] [--profile] "
         "[--jobs N] [--sim-shards S] [--sim-threads N] "
         "[--chaos-seeds N] [--chaos-space FILE] [--repro FILE] "
         "[--telemetry[=INTERVAL]] [--telemetry-out PATH] "
         "[--param K=V] [--quiet]\n"
         "  --seed N      root seed (default: the bench's published seed)\n"
         "  --json PATH   result artifact path (default BENCH_" +
         id +
         ".json)\n"
         "  --no-json     skip the JSON artifact\n"
         "  --trace PATH  write kernel/net trace as JSONL to PATH\n"
         "  --stream-trace PATH  same trace, bounded memory: chunked\n"
         "                streaming writes (and per-shard disk spills under\n"
         "                --sim-shards); byte-identical to --trace\n"
         "  --profile     kernel self-profiler: per-tag wall time in the\n"
         "                JSON artifact under \"profile\"\n"
         "  --jobs N      worker threads for independent sweep points\n"
         "                (results are byte-identical for any N)\n"
         "  --sim-shards S  shard the kernel S ways (shard-aware benches;\n"
         "                S=1 is the legacy kernel bit-for-bit)\n"
         "  --sim-threads N worker threads inside one sharded kernel\n"
         "                (results are byte-identical for any N)\n"
         "  --chaos-seeds N  fuzz seeds per protocol (chaos-aware benches)\n"
         "  --chaos-space FILE  JSON ChaosSpace overriding the built-in\n"
         "                fault ranges (chaos-aware benches)\n"
         "  --repro FILE  replay one chaos repro envelope instead of\n"
         "                fuzzing (chaos-aware benches)\n"
         "  --telemetry[=INTERVAL]  sample sim-time gauges/rates every\n"
         "                INTERVAL of sim time (100ms default; units us, ms,\n"
         "                s) into a JSONL series stream; byte-identical at\n"
         "                any --sim-threads; analyze with\n"
         "                `decentnet-trace timeline`\n"
         "  --telemetry-out PATH  series stream path (default TELEMETRY_" +
         id +
         ".jsonl)\n"
         "  --param K=V   bench-specific knob (repeatable; e.g. max_n=1000)\n"
         "  --quiet       suppress banner and table\n";
}

ExperimentHarness::ExperimentHarness(std::string id, ExperimentOptions opts)
    : id_(std::move(id)), opts_(std::move(opts)) {
  if (!opts_.trace_path.empty()) {
    try {
      if (opts_.stream_trace) {
        trace_ = std::make_unique<StreamingTraceSink>(opts_.trace_path);
      } else {
        trace_ = std::make_unique<JsonlTraceSink>(opts_.trace_path);
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      std::exit(1);
    }
  }
  if (opts_.profile) {
    profiler_ = std::make_unique<Profiler>();
  }
  if (opts_.telemetry_interval > 0) {
    const std::string path = opts_.telemetry_path.empty()
                                 ? "TELEMETRY_" + id_ + ".jsonl"
                                 : opts_.telemetry_path;
    try {
      telemetry_sink_ = std::make_unique<SeriesSink>(path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      std::exit(1);
    }
    telemetry_ =
        std::make_unique<Telemetry>(*telemetry_sink_, opts_.telemetry_interval);
  }
}

ExperimentHarness::ExperimentHarness(std::string id, int argc,
                                     char* const* argv,
                                     ExperimentOptions defaults)
    // `id` is deliberately copied (not moved) into the delegated ctor: the
    // lambda below still reads it, and the two arguments are
    // indeterminately sequenced.
    : ExperimentHarness(id, [&] {
        const std::string prog = (argv && argc > 0) ? argv[0] : "bench";
        ExperimentOptions opts = std::move(defaults);
        std::string error;
        if (!parse_cli(argc, argv, opts, error)) {
          std::fprintf(stderr, "%s\n%s", error.c_str(),
                       usage(prog, id).c_str());
          std::exit(2);
        }
        if (opts.help) {
          std::fputs(usage(prog, id).c_str(), stdout);
          std::exit(0);
        }
        return opts;
      }()) {}

ExperimentHarness::~ExperimentHarness() {
  if (trace_) trace_->flush();
  if (telemetry_sink_) telemetry_sink_->flush();
}

const std::string* ExperimentHarness::cli_param(const std::string& key) const {
  const std::string* found = nullptr;
  for (const auto& [k, v] : opts_.params) {
    if (k == key) found = &v;
  }
  return found;
}

std::uint64_t ExperimentHarness::cli_param_u64(const std::string& key,
                                               std::uint64_t fallback) const {
  const std::string* v = cli_param(key);
  if (!v) return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v->c_str(), &end, 0);
  if (end == v->c_str() || *end != '\0') {
    std::fprintf(stderr, "--param %s: not an integer: %s\n", key.c_str(),
                 v->c_str());
    std::exit(2);
  }
  return parsed;
}

std::uint64_t ExperimentHarness::seed_for(std::uint64_t index) const {
  std::uint64_t state = opts_.seed + 0x9E3779B97F4A7C15ull * (index + 1);
  return splitmix64(state);
}

void ExperimentHarness::describe(std::string title, std::string claim,
                                 std::string method) {
  title_ = std::move(title);
  claim_ = std::move(claim);
  method_ = std::move(method);
  if (opts_.quiet) return;
  std::printf(
      "\n================================================================\n");
  std::printf("%s\n", title_.c_str());
  if (!claim_.empty()) std::printf("Paper claim : %s\n", claim_.c_str());
  if (!method_.empty()) std::printf("This bench  : %s\n", method_.c_str());
  std::printf("Seed        : %llu\n",
              static_cast<unsigned long long>(opts_.seed));
  std::printf(
      "================================================================\n");
}

Simulator& ExperimentHarness::simulator() {
  if (!sim_) {
    sim_ = std::make_unique<Simulator>(opts_.seed);
    sim_->set_trace(trace_.get());
    sim_->set_profiler(profiler_.get());
    if (telemetry_) telemetry_->attach(*sim_);
  }
  return *sim_;
}

void ExperimentHarness::set_param(const std::string& key, Value v) {
  for (auto& [k, existing] : params_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  params_.emplace_back(key, std::move(v));
}

void ExperimentHarness::add_row(
    std::vector<std::pair<std::string, Value>> cells) {
  rows_.push_back(std::move(cells));
}

std::size_t ExperimentHarness::effective_jobs() const {
  // A single interleaved trace stream must stay deterministic, so tracing
  // pins execution to one worker. Telemetry writes one series stream the
  // same way.
  if (trace_ || telemetry_) return 1;
  return opts_.jobs == 0 ? 1 : opts_.jobs;
}

void ExperimentHarness::run_points(
    std::size_t count, const std::function<void(PointScope&)>& body) {
  if (count == 0) return;
  std::size_t jobs = effective_jobs();
  if (trace_ && opts_.jobs > 1 && !opts_.quiet) {
    std::fprintf(stderr,
                 "[%s] --trace forces --jobs 1 (deterministic trace)\n",
                 id_.c_str());
  }
  if (!trace_ && telemetry_ && opts_.jobs > 1 && !opts_.quiet) {
    std::fprintf(stderr,
                 "[%s] --telemetry forces --jobs 1 (deterministic series)\n",
                 id_.c_str());
  }
  if (jobs > count) jobs = count;

  // Scopes are pre-built so every point's seed derivation is fixed before
  // any work starts; deque keeps addresses stable for the workers.
  std::deque<PointScope> scopes;
  for (std::size_t i = 0; i < count; ++i) {
    scopes.emplace_back(PointScope(i, opts_.seed, seed_for(i), trace_.get(),
                                   trace_spill(), profiler_ != nullptr,
                                   telemetry_.get()));
  }

  if (jobs <= 1) {
    for (auto& scope : scopes) body(scope);
  } else {
    std::atomic<std::size_t> next{0};
    std::vector<std::size_t> failed_index(jobs, count);
    std::vector<std::exception_ptr> failure(jobs);
    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (std::size_t w = 0; w < jobs; ++w) {
      pool.emplace_back([&, w] {
        for (;;) {
          const std::size_t i = next.fetch_add(1);
          if (i >= count) return;
          try {
            body(scopes[i]);
          } catch (...) {
            // Remember the worker's first failure (lowest index wins at
            // rethrow time); keep draining so merge order stays defined.
            if (!failure[w]) {
              failure[w] = std::current_exception();
              failed_index[w] = i;
            }
          }
        }
      });
    }
    for (auto& t : pool) t.join();
    std::size_t best = count;
    std::exception_ptr first;
    for (std::size_t w = 0; w < jobs; ++w) {
      if (failure[w] && failed_index[w] < best) {
        best = failed_index[w];
        first = failure[w];
      }
    }
    if (first) std::rethrow_exception(first);
  }

  // Deterministic merge: submission (index) order, never completion order.
  for (auto& scope : scopes) {
    for (auto& row : scope.rows_) rows_.push_back(std::move(row));
    metrics_.merge_from(scope.metrics_);
    if (profiler_ && scope.profiler_) profiler_->merge_from(*scope.profiler_);
  }
}

std::string ExperimentHarness::to_json() const {
  // Column order: union of row keys, first-seen; timing cells excluded so
  // the artifact is deterministic in the seed.
  std::vector<std::string> columns;
  for (const auto& row : rows_) {
    for (const auto& [key, value] : row) {
      if (value.is_timing()) continue;
      bool seen = false;
      for (const auto& c : columns) {
        if (c == key) {
          seen = true;
          break;
        }
      }
      if (!seen) columns.push_back(key);
    }
  }

  std::string out = "{\n  \"id\": " + json_string(id_);
  if (!title_.empty()) out += ",\n  \"title\": " + json_string(title_);
  if (!claim_.empty()) out += ",\n  \"claim\": " + json_string(claim_);
  if (!method_.empty()) out += ",\n  \"method\": " + json_string(method_);
  out += ",\n  \"seed\": " + std::to_string(opts_.seed);
  if (!params_.empty()) {
    out += ",\n  \"params\": {";
    bool first = true;
    for (const auto& [key, value] : params_) {
      if (!first) out += ", ";
      first = false;
      out += json_string(key) + ": " + value.to_json();
    }
    out += "}";
  }
  out += ",\n  \"columns\": [";
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (i) out += ", ";
    out += json_string(columns[i]);
  }
  out += "],\n  \"rows\": [";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    out += r ? ",\n    {" : "\n    {";
    bool first = true;
    for (const auto& [key, value] : rows_[r]) {
      if (value.is_timing()) continue;
      if (!first) out += ", ";
      first = false;
      out += json_string(key) + ": " + value.to_json();
    }
    out += "}";
  }
  out += rows_.empty() ? "]" : "\n  ]";
  const std::string metrics_json = metrics_.to_json();
  if (metrics_json != "{}") {
    out += ",\n  \"metrics\": " + metrics_json;
  }
  // Profiler output is wall-clock and therefore nondeterministic; it only
  // appears when --profile was given, so seed-determinism byte-compares
  // (which never pass --profile) are unaffected.
  if (profiler_ && !profiler_->empty()) {
    out += ",\n  \"profile\": " + profiler_->to_json();
  }
  out += "\n}\n";
  return out;
}

int ExperimentHarness::finish() {
  if (finished_) return 0;
  finished_ = true;

  if (!opts_.quiet && !rows_.empty()) {
    Table t(title_.empty() ? id_ : title_);
    std::vector<std::string> columns;
    for (const auto& row : rows_) {
      for (const auto& [key, value] : row) {
        (void)value;
        bool seen = false;
        for (const auto& c : columns) {
          if (c == key) {
            seen = true;
            break;
          }
        }
        if (!seen) columns.push_back(key);
      }
    }
    t.set_header(columns);
    for (const auto& row : rows_) {
      std::vector<std::string> cells;
      for (const auto& col : columns) {
        const Value* found = nullptr;
        for (const auto& [key, value] : row) {
          if (key == col) {
            found = &value;
            break;
          }
        }
        cells.push_back(found ? found->to_cell() : "-");
      }
      t.add_row(std::move(cells));
    }
    t.print();
  }

  if (opts_.emit_json) {
    const std::string path =
        opts_.json_path.empty() ? "BENCH_" + id_ + ".json" : opts_.json_path;
    std::ofstream out(path, std::ios::out | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    out << to_json();
    if (!opts_.quiet) std::printf("\n[results written to %s]\n", path.c_str());
  }
  if (trace_) trace_->flush();
  if (telemetry_sink_) {
    telemetry_sink_->flush();
    if (!opts_.quiet) {
      const std::string path = opts_.telemetry_path.empty()
                                   ? "TELEMETRY_" + id_ + ".jsonl"
                                   : opts_.telemetry_path;
      std::printf("[telemetry: %llu samples in %s]\n",
                  static_cast<unsigned long long>(
                      telemetry_sink_->records_written()),
                  path.c_str());
    }
  }
  return 0;
}

}  // namespace decentnet::sim
