#include "fabric/contracts.hpp"

#include <charconv>

namespace decentnet::fabric {

namespace {
ChaincodeResult ok(std::string payload = "") {
  return ChaincodeResult{true, std::move(payload)};
}
ChaincodeResult fail(std::string reason) {
  return ChaincodeResult{false, std::move(reason)};
}

std::optional<long long> parse_int(const std::string& s) {
  long long v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}
}  // namespace

// ---------------------------------------------------------------------------
// AssetTransferContract
// ---------------------------------------------------------------------------

ChaincodeResult AssetTransferContract::invoke(
    const std::vector<std::string>& args, ChaincodeStub& stub) {
  if (args.empty()) return fail("missing method");
  const std::string& method = args[0];
  if (method == "create") {
    if (args.size() != 4) return fail("create <id> <owner> <value>");
    const std::string key = "asset/" + args[1];
    if (stub.get(key)) return fail("asset exists");
    if (!parse_int(args[3])) return fail("bad value");
    stub.put(key, args[2] + "," + args[3]);
    return ok();
  }
  if (method == "transfer") {
    if (args.size() != 3) return fail("transfer <id> <new_owner>");
    const std::string key = "asset/" + args[1];
    const auto cur = stub.get(key);
    if (!cur) return fail("no such asset");
    const auto comma = cur->find(',');
    stub.put(key, args[2] + cur->substr(comma));
    return ok();
  }
  if (method == "read") {
    if (args.size() != 2) return fail("read <id>");
    const auto cur = stub.get("asset/" + args[1]);
    if (!cur) return fail("no such asset");
    return ok(*cur);
  }
  return fail("unknown method: " + method);
}

// ---------------------------------------------------------------------------
// SupplyChainContract
// ---------------------------------------------------------------------------

ChaincodeResult SupplyChainContract::invoke(
    const std::vector<std::string>& args, ChaincodeStub& stub) {
  if (args.empty()) return fail("missing method");
  const std::string& method = args[0];
  if (method == "register") {
    if (args.size() != 3) return fail("register <item> <origin>");
    const std::string key = "sc/" + args[1];
    if (stub.get(key)) return fail("item exists");
    stub.put(key, "origin:" + args[2]);
    return ok();
  }
  const auto append_event = [&](const std::string& item,
                                const std::string& event) -> ChaincodeResult {
    const std::string key = "sc/" + item;
    const auto history = stub.get(key);
    if (!history) return fail("unknown item");
    stub.put(key, *history + ";" + event);
    return ok();
  };
  if (method == "ship") {
    if (args.size() != 3) return fail("ship <item> <holder>");
    return append_event(args[1], "ship:" + args[2]);
  }
  if (method == "receive") {
    if (args.size() != 3) return fail("receive <item> <location>");
    return append_event(args[1], "recv:" + args[2]);
  }
  if (method == "trace") {
    if (args.size() != 2) return fail("trace <item>");
    const auto history = stub.get("sc/" + args[1]);
    if (!history) return fail("unknown item");
    return ok(*history);
  }
  return fail("unknown method: " + method);
}

// ---------------------------------------------------------------------------
// HealthRecordsContract
// ---------------------------------------------------------------------------

ChaincodeResult HealthRecordsContract::invoke(
    const std::vector<std::string>& args, ChaincodeStub& stub) {
  if (args.empty()) return fail("missing method");
  const std::string& method = args[0];
  const auto consent_key = [](const std::string& patient,
                              const std::string& provider) {
    return "hc/consent/" + patient + "/" + provider;
  };
  if (method == "grant") {
    if (args.size() != 3) return fail("grant <patient> <provider>");
    stub.put(consent_key(args[1], args[2]), "granted");
    return ok();
  }
  if (method == "revoke") {
    if (args.size() != 3) return fail("revoke <patient> <provider>");
    stub.del(consent_key(args[1], args[2]));
    return ok();
  }
  if (method == "put") {
    if (args.size() != 4) return fail("put <patient> <provider> <data>");
    if (!stub.get(consent_key(args[1], args[2]))) {
      return fail("no consent");
    }
    const std::string key = "hc/rec/" + args[1] + "/" + args[2];
    const auto existing = stub.get(key);
    stub.put(key, existing ? *existing + "|" + args[3] : args[3]);
    return ok();
  }
  if (method == "get") {
    if (args.size() != 3) return fail("get <patient> <provider>");
    if (!stub.get(consent_key(args[1], args[2]))) {
      return fail("no consent");
    }
    const auto rec = stub.get("hc/rec/" + args[1] + "/" + args[2]);
    return ok(rec.value_or(""));
  }
  return fail("unknown method: " + method);
}

// ---------------------------------------------------------------------------
// KvContract
// ---------------------------------------------------------------------------

ChaincodeResult KvContract::invoke(const std::vector<std::string>& args,
                                   ChaincodeStub& stub) {
  if (args.empty()) return fail("missing method");
  const std::string& method = args[0];
  if (method == "put") {
    if (args.size() != 3) return fail("put <key> <value>");
    stub.get("kv/" + args[1]);  // read-modify-write: records the version
    stub.put("kv/" + args[1], args[2]);
    return ok();
  }
  if (method == "get") {
    if (args.size() != 2) return fail("get <key>");
    const auto v = stub.get("kv/" + args[1]);
    return v ? ok(*v) : fail("not found");
  }
  if (method == "del") {
    if (args.size() != 2) return fail("del <key>");
    stub.del("kv/" + args[1]);
    return ok();
  }
  return fail("unknown method: " + method);
}

// ---------------------------------------------------------------------------
// EnergyTradingContract
// ---------------------------------------------------------------------------

ChaincodeResult EnergyTradingContract::invoke(
    const std::vector<std::string>& args, ChaincodeStub& stub) {
  if (args.empty()) return fail("missing method");
  const std::string& method = args[0];
  const auto read_balance = [&](const std::string& org) -> long long {
    const auto v = stub.get("en/bal/" + org);
    if (!v) return 0;
    return parse_int(*v).value_or(0);
  };
  const auto write_balance = [&](const std::string& org, long long kwh) {
    stub.put("en/bal/" + org, std::to_string(kwh));
  };
  if (method == "meter") {
    if (args.size() != 3) return fail("meter <org> <kwh_signed>");
    const auto delta = parse_int(args[2]);
    if (!delta) return fail("bad kwh");
    write_balance(args[1], read_balance(args[1]) + *delta);
    return ok();
  }
  if (method == "offer") {
    if (args.size() != 5) return fail("offer <id> <seller> <kwh> <price>");
    const auto kwh = parse_int(args[3]);
    const auto price = parse_int(args[4]);
    if (!kwh || !price || *kwh <= 0) return fail("bad offer");
    if (read_balance(args[2]) < *kwh) return fail("insufficient generation");
    const std::string key = "en/offer/" + args[1];
    if (stub.get(key)) return fail("offer exists");
    stub.put(key, args[2] + "," + args[3] + "," + args[4]);
    return ok();
  }
  if (method == "buy") {
    if (args.size() != 3) return fail("buy <id> <buyer>");
    const std::string key = "en/offer/" + args[1];
    const auto offer = stub.get(key);
    if (!offer) return fail("no such offer");
    const auto c1 = offer->find(',');
    const auto c2 = offer->find(',', c1 + 1);
    const std::string seller = offer->substr(0, c1);
    const long long kwh =
        parse_int(offer->substr(c1 + 1, c2 - c1 - 1)).value_or(0);
    write_balance(seller, read_balance(seller) - kwh);
    write_balance(args[2], read_balance(args[2]) + kwh);
    stub.del(key);
    return ok(seller + "->" + args[2] + ":" + std::to_string(kwh));
  }
  if (method == "balance") {
    if (args.size() != 2) return fail("balance <org>");
    return ok(std::to_string(read_balance(args[1])));
  }
  return fail("unknown method: " + method);
}

}  // namespace decentnet::fabric
