#include "fabric/msp.hpp"

#include "crypto/buffer.hpp"

namespace decentnet::fabric {

crypto::Hash256 Certificate::digest() const {
  crypto::ByteWriter w;
  w.str("fabric-cert").hash(subject).str(org).str(role);
  return w.sha256();
}

MembershipService::MembershipService(std::uint64_t seed)
    : ca_(crypto::KeyAuthority::global().issue(seed ^ 0xCAull << 56)) {}

Certificate MembershipService::enroll(const crypto::PublicKey& subject,
                                      std::string org, std::string role) {
  Certificate cert;
  cert.subject = subject;
  cert.org = std::move(org);
  cert.role = std::move(role);
  cert.ca_signature = ca_.sign(cert.digest());
  ++issued_;
  return cert;
}

void MembershipService::revoke(const crypto::PublicKey& subject) {
  revoked_.insert(subject);
}

bool MembershipService::validate(const Certificate& cert) const {
  if (revoked_.count(cert.subject) > 0) return false;
  return crypto::KeyAuthority::global().verify(ca_.public_key(),
                                               cert.digest(),
                                               cert.ca_signature);
}

}  // namespace decentnet::fabric
