// The execute-order-validate pipeline of a permissioned channel
// (Hyperledger-Fabric architecture, §IV):
//
//   client --(proposal)--> endorsing peers   [speculative execution, signed
//                                             read/write sets]
//   client --(endorsed tx)--> ordering service [solo / Raft / PBFT batching
//                                               into blocks]
//   orderer --(block)--> all peers            [endorsement-policy check,
//                                              MVCC validation, commit]
//
// Consensus runs among the channel's members only — the paper's key
// contrast with global-broadcast permissionless chains (E12).
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "bft/pbft.hpp"
#include "bft/raft.hpp"
#include "fabric/chaincode.hpp"
#include "fabric/msp.hpp"
#include "net/message.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace decentnet::fabric {

struct Endorsement {
  Certificate endorser;
  crypto::Signature signature;  // over the response digest
};

struct EndorsedTx {
  std::uint64_t tx_id = 0;
  std::string chaincode;
  RwSet rwset;
  std::string result_payload;
  std::vector<Endorsement> endorsements;
  net::NodeId client_addr;  // where the commit event goes

  crypto::Hash256 response_digest() const;
  std::size_t wire_size() const;
};

struct FabricBlock {
  std::uint64_t number = 0;
  std::vector<EndorsedTx> txs;

  std::size_t wire_size() const;
};

namespace fabric_msg {
struct ProposalMsg {
  std::uint64_t tx_id;
  std::string chaincode;
  std::vector<std::string> args;
};
struct ProposalResponseMsg {
  std::uint64_t tx_id;
  bool ok;
  RwSet rwset;
  std::string result_payload;
  Endorsement endorsement;
};
struct SubmitMsg {
  EndorsedTx tx;
};
struct BlockDeliverMsg {
  std::shared_ptr<const FabricBlock> block;
};
struct CommitEventMsg {
  std::uint64_t tx_id;
  bool valid;
  std::string reason;
};
}  // namespace fabric_msg

/// n-of-m organizations must endorse.
struct EndorsementPolicy {
  std::size_t required_orgs = 1;
};

struct FabricPeerStats {
  std::uint64_t endorsements = 0;
  std::uint64_t txs_committed = 0;
  std::uint64_t mvcc_conflicts = 0;
  std::uint64_t policy_failures = 0;
  std::uint64_t blocks_received = 0;
};

class FabricPeer final : public net::Host {
 public:
  FabricPeer(net::Network& net, net::NodeId addr, std::string org,
             MembershipService& msp, EndorsementPolicy policy,
             std::uint64_t key_seed);
  ~FabricPeer() override;

  FabricPeer(const FabricPeer&) = delete;
  FabricPeer& operator=(const FabricPeer&) = delete;

  net::NodeId addr() const { return addr_; }
  const std::string& org() const { return org_; }
  const Certificate& certificate() const { return cert_; }
  const KvStore& state() const { return state_; }
  const FabricPeerStats& stats() const { return stats_; }

  /// Install a chaincode (shared across peers; contracts are stateless).
  void install(std::shared_ptr<Chaincode> chaincode);

  /// This peer notifies clients when their transactions commit.
  void set_event_source(bool on) { event_source_ = on; }

  /// Hook fired on every validated-and-committed transaction.
  using CommitHook = std::function<void(const EndorsedTx&, bool valid)>;
  void set_commit_hook(CommitHook hook) { commit_hook_ = std::move(hook); }

  void handle_message(const net::Message& msg) override;

 private:
  void commit_block(const FabricBlock& block);

  net::Network& net_;
  net::NodeId addr_;
  std::string org_;
  MembershipService& msp_;
  EndorsementPolicy policy_;
  // Experiment-scoped metric handles (aggregated across all peers sharing
  // the network's registry); per-peer numbers stay in stats_.
  sim::Counter& m_endorsements_;
  sim::Counter& m_txs_committed_;
  sim::Counter& m_mvcc_conflicts_;
  sim::Counter& m_policy_failures_;
  sim::Counter& m_blocks_received_;
  crypto::PrivateKey key_;
  Certificate cert_;
  KvStore state_;
  std::unordered_map<std::string, std::shared_ptr<Chaincode>> chaincodes_;
  bool event_source_ = false;
  std::uint64_t last_block_ = 0;
  FabricPeerStats stats_;
  CommitHook commit_hook_;
};

// ---------------------------------------------------------------------------
// Ordering services
// ---------------------------------------------------------------------------

class OrderingService {
 public:
  virtual ~OrderingService() = default;
  /// Address clients submit endorsed transactions to.
  virtual net::NodeId submit_address() const = 0;
  /// Peer that should receive every cut block.
  virtual void register_peer(net::NodeId peer) = 0;
  virtual std::uint64_t blocks_cut() const = 0;
};

struct OrdererConfig {
  std::size_t block_max_txs = 10;
  sim::SimDuration block_timeout = sim::millis(500);
};

/// Single-node orderer (Fabric's "solo", for development and as a baseline).
class SoloOrderer final : public net::Host, public OrderingService {
 public:
  SoloOrderer(net::Network& net, net::NodeId addr, OrdererConfig config);
  ~SoloOrderer() override;

  net::NodeId submit_address() const override { return addr_; }
  void register_peer(net::NodeId peer) override { peers_.push_back(peer); }
  std::uint64_t blocks_cut() const override { return next_block_ - 1; }

  void handle_message(const net::Message& msg) override;

 private:
  void cut_block();

  net::Network& net_;
  sim::Simulator& sim_;
  net::NodeId addr_;
  OrdererConfig config_;
  sim::Counter& m_blocks_cut_;
  std::vector<net::NodeId> peers_;
  std::deque<EndorsedTx> pending_;
  std::uint64_t next_block_ = 1;
  sim::EventHandle timer_;
};

/// Crash-fault-tolerant ordering on a Raft group. The frontend host accepts
/// submissions, proposes them through the current leader, and cuts blocks
/// from the committed log.
///
/// Simulation note: the Raft log carries a reference to the endorsed tx (its
/// wire size is accounted on the Raft messages); the payload itself lives in
/// the frontend's store, standing in for the orderer's disk.
class RaftOrderer final : public net::Host, public OrderingService {
 public:
  RaftOrderer(net::Network& net, std::size_t nodes, OrdererConfig config,
              bft::RaftConfig raft_config = {});
  ~RaftOrderer() override;

  net::NodeId submit_address() const override { return addr_; }
  void register_peer(net::NodeId peer) override { peers_.push_back(peer); }
  std::uint64_t blocks_cut() const override { return next_block_ - 1; }

  /// Expose the consensus group for fault injection in tests.
  std::vector<bft::RaftNode*> raft_nodes();

  void handle_message(const net::Message& msg) override;

 private:
  void on_ordered(std::uint64_t index, const bft::Command& cmd);
  void cut_block();
  void drive_proposals();

  net::Network& net_;
  sim::Simulator& sim_;
  net::NodeId addr_;
  OrdererConfig config_;
  sim::Counter& m_blocks_cut_;
  std::vector<std::unique_ptr<bft::RaftNode>> nodes_;
  std::vector<net::NodeId> peers_;
  std::unordered_map<std::uint64_t, EndorsedTx> store_;  // tx_id -> payload
  std::deque<std::uint64_t> unproposed_;
  std::unordered_set<std::uint64_t> ordered_seen_;  // dedup across replicas
  std::deque<EndorsedTx> pending_block_;
  std::uint64_t next_block_ = 1;
  sim::EventHandle timer_;
  sim::EventHandle propose_timer_;
};

/// Byzantine-fault-tolerant ordering on a PBFT group (the BFT-SMaRt role).
class PbftOrderer final : public net::Host, public OrderingService {
 public:
  PbftOrderer(net::Network& net, std::size_t f, OrdererConfig config,
              bft::PbftConfig pbft_config = {});
  ~PbftOrderer() override;

  net::NodeId submit_address() const override { return addr_; }
  void register_peer(net::NodeId peer) override { peers_.push_back(peer); }
  std::uint64_t blocks_cut() const override { return next_block_ - 1; }

  std::vector<bft::PbftReplica*> replicas();

  void handle_message(const net::Message& msg) override;

 private:
  void on_ordered(std::uint64_t seq, const bft::Command& cmd);
  void cut_block();

  net::Network& net_;
  sim::Simulator& sim_;
  net::NodeId addr_;
  OrdererConfig config_;
  sim::Counter& m_blocks_cut_;
  std::vector<std::unique_ptr<bft::PbftReplica>> replicas_;
  std::unique_ptr<bft::PbftClient> client_;
  std::vector<net::NodeId> peers_;
  std::unordered_map<std::uint64_t, EndorsedTx> store_;
  std::unordered_set<std::uint64_t> ordered_seen_;
  std::deque<EndorsedTx> pending_block_;
  std::uint64_t next_block_ = 1;
  sim::EventHandle timer_;
};

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

class FabricClient final : public net::Host {
 public:
  /// cb(valid, result_payload, end_to_end_latency)
  using InvokeCallback =
      std::function<void(bool, const std::string&, sim::SimDuration)>;

  FabricClient(net::Network& net, net::NodeId addr,
               EndorsementPolicy policy);
  ~FabricClient() override;

  net::NodeId addr() const { return addr_; }

  /// Endorsing peers, one (or more) per org; the client picks one per org.
  void set_endorsers(std::vector<FabricPeer*> peers);
  void set_orderer(OrderingService* orderer) { orderer_ = orderer; }

  /// Run a chaincode invocation through the full pipeline.
  void invoke(const std::string& chaincode, std::vector<std::string> args,
              InvokeCallback cb);

  std::uint64_t committed() const { return committed_; }
  std::uint64_t failed() const { return failed_; }

  void handle_message(const net::Message& msg) override;

 private:
  struct PendingTx {
    std::string chaincode;
    InvokeCallback cb;
    sim::SimTime started = 0;
    std::vector<fabric_msg::ProposalResponseMsg> responses;
    bool submitted = false;
  };

  net::Network& net_;
  sim::Simulator& sim_;
  net::NodeId addr_;
  EndorsementPolicy policy_;
  std::vector<FabricPeer*> endorsers_;
  OrderingService* orderer_ = nullptr;
  std::unordered_map<std::uint64_t, PendingTx> pending_;
  std::uint64_t next_tx_ = 1;
  std::uint64_t committed_ = 0;
  std::uint64_t failed_ = 0;
};

}  // namespace decentnet::fabric
