#include "fabric/chaincode.hpp"

#include <algorithm>

namespace decentnet::fabric {

std::optional<KvStore::Versioned> KvStore::get(const std::string& key) const {
  const auto it = state_.find(key);
  if (it == state_.end() || it->second.deleted) return std::nullopt;
  return it->second;
}

void KvStore::put(const std::string& key, std::string value) {
  Versioned& v = state_[key];
  v.value = std::move(value);
  v.deleted = false;
  ++v.version;
}

void KvStore::del(const std::string& key) {
  const auto it = state_.find(key);
  if (it == state_.end()) return;
  it->second.deleted = true;
  it->second.value.clear();
  ++it->second.version;
}

std::vector<std::pair<std::string, std::string>> KvStore::by_prefix(
    const std::string& prefix) const {
  std::vector<std::pair<std::string, std::string>> out;
  for (auto it = state_.lower_bound(prefix); it != state_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    if (!it->second.deleted) out.emplace_back(it->first, it->second.value);
  }
  return out;
}

std::size_t RwSet::wire_size() const {
  std::size_t total = 16;
  for (const ReadItem& r : reads) total += r.key.size() + 12;
  for (const WriteItem& w : writes) total += w.key.size() + w.value.size() + 8;
  return total;
}

std::optional<std::string> ChaincodeStub::get(const std::string& key) {
  // Read-your-writes within one invocation.
  const auto pend = pending_.find(key);
  if (pend != pending_.end()) return pend->second;
  const auto v = state_.get(key);
  // Record the version we depended on (0 = absent).
  const std::uint64_t version = v ? v->version : 0;
  const auto already = std::find_if(
      rwset_.reads.begin(), rwset_.reads.end(),
      [&](const ReadItem& r) { return r.key == key; });
  if (already == rwset_.reads.end()) {
    rwset_.reads.push_back(ReadItem{key, version});
  }
  if (!v) return std::nullopt;
  return v->value;
}

void ChaincodeStub::put(const std::string& key, std::string value) {
  pending_[key] = value;
  const auto it = std::find_if(
      rwset_.writes.begin(), rwset_.writes.end(),
      [&](const WriteItem& w) { return w.key == key; });
  if (it != rwset_.writes.end()) {
    it->value = std::move(value);
    it->is_delete = false;
  } else {
    rwset_.writes.push_back(WriteItem{key, std::move(value), false});
  }
}

void ChaincodeStub::del(const std::string& key) {
  pending_.erase(key);
  const auto it = std::find_if(
      rwset_.writes.begin(), rwset_.writes.end(),
      [&](const WriteItem& w) { return w.key == key; });
  if (it != rwset_.writes.end()) {
    it->value.clear();
    it->is_delete = true;
  } else {
    rwset_.writes.push_back(WriteItem{key, "", true});
  }
}

std::vector<std::pair<std::string, std::string>> ChaincodeStub::by_prefix(
    const std::string& prefix) {
  auto out = state_.by_prefix(prefix);
  // Record reads for MVCC on everything observed.
  for (const auto& [key, value] : out) {
    const auto v = state_.get(key);
    const auto already = std::find_if(
        rwset_.reads.begin(), rwset_.reads.end(),
        [&](const ReadItem& r) { return r.key == key; });
    if (already == rwset_.reads.end()) {
      rwset_.reads.push_back(ReadItem{key, v ? v->version : 0});
    }
  }
  // Overlay pending writes.
  for (const auto& [key, value] : pending_) {
    if (key.compare(0, prefix.size(), prefix) == 0) {
      const auto it = std::find_if(out.begin(), out.end(), [&](const auto& p) {
        return p.first == key;
      });
      if (it != out.end()) {
        it->second = value;
      } else {
        out.emplace_back(key, value);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

void apply_writes(KvStore& state, const RwSet& rwset) {
  for (const WriteItem& w : rwset.writes) {
    if (w.is_delete) {
      state.del(w.key);
    } else {
      state.put(w.key, w.value);
    }
  }
}

bool mvcc_valid(const KvStore& state, const RwSet& rwset) {
  for (const ReadItem& r : rwset.reads) {
    const auto v = state.get(r.key);
    const std::uint64_t current = v ? v->version : 0;
    if (current != r.version) return false;
  }
  return true;
}

}  // namespace decentnet::fabric
