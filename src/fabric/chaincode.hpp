// Chaincode (smart contract) engine with versioned world state.
//
// Fabric's execute-order-validate model: chaincode runs speculatively
// against a peer's current state, producing a read set (keys + the versions
// observed) and a write set (keys + new values). Validation after ordering
// replays the read set against the committed state — if any version moved,
// the transaction is an MVCC conflict and is rejected without execution.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace decentnet::fabric {

/// Versioned world state. Versions increase monotonically per key on commit.
class KvStore {
 public:
  struct Versioned {
    std::string value;
    std::uint64_t version = 0;
    bool deleted = false;
  };

  std::optional<Versioned> get(const std::string& key) const;
  void put(const std::string& key, std::string value);
  void del(const std::string& key);
  std::size_t size() const { return state_.size(); }

  /// Keys with a given prefix (range queries for contracts).
  std::vector<std::pair<std::string, std::string>> by_prefix(
      const std::string& prefix) const;

 private:
  std::map<std::string, Versioned> state_;
};

struct ReadItem {
  std::string key;
  std::uint64_t version = 0;  // 0 = key absent when read
};
struct WriteItem {
  std::string key;
  std::string value;
  bool is_delete = false;
};
struct RwSet {
  std::vector<ReadItem> reads;
  std::vector<WriteItem> writes;

  std::size_t wire_size() const;
};

/// The API chaincode sees during speculative execution.
class ChaincodeStub {
 public:
  explicit ChaincodeStub(const KvStore& state) : state_(state) {}

  /// Read a key, recording the observed version in the read set.
  std::optional<std::string> get(const std::string& key);
  void put(const std::string& key, std::string value);
  void del(const std::string& key);
  std::vector<std::pair<std::string, std::string>> by_prefix(
      const std::string& prefix);

  const RwSet& rwset() const { return rwset_; }
  RwSet take_rwset() { return std::move(rwset_); }

 private:
  const KvStore& state_;
  RwSet rwset_;
  std::map<std::string, std::string> pending_;  // read-your-writes
};

struct ChaincodeResult {
  bool ok = false;
  std::string payload;  // return value or error text
};

/// A deployed contract: pure function of (args, stub).
class Chaincode {
 public:
  virtual ~Chaincode() = default;
  virtual std::string name() const = 0;
  virtual ChaincodeResult invoke(const std::vector<std::string>& args,
                                 ChaincodeStub& stub) = 0;
};

/// Apply a validated write set to the committed state (bumping versions).
void apply_writes(KvStore& state, const RwSet& rwset);

/// MVCC check: every read version must still match the committed state.
bool mvcc_valid(const KvStore& state, const RwSet& rwset);

}  // namespace decentnet::fabric
