#include "fabric/channel.hpp"

#include <algorithm>
#include <cstdlib>

#include "crypto/buffer.hpp"

namespace decentnet::fabric {

namespace fm = fabric_msg;

crypto::Hash256 EndorsedTx::response_digest() const {
  crypto::ByteWriter w;
  w.str("fabric-response").u64(tx_id).str(chaincode).str(result_payload);
  w.u64(rwset.reads.size());
  for (const ReadItem& r : rwset.reads) w.str(r.key).u64(r.version);
  w.u64(rwset.writes.size());
  for (const WriteItem& wr : rwset.writes) {
    w.str(wr.key).str(wr.value).u8(wr.is_delete ? 1 : 0);
  }
  return w.sha256();
}

std::size_t EndorsedTx::wire_size() const {
  return 64 + rwset.wire_size() + result_payload.size() +
         endorsements.size() * 128;
}

std::size_t FabricBlock::wire_size() const {
  std::size_t total = 64;
  for (const EndorsedTx& tx : txs) total += tx.wire_size();
  return total;
}

namespace {
crypto::Hash256 proposal_response_digest(const fm::ProposalResponseMsg& r,
                                         const std::string& chaincode) {
  EndorsedTx tmp;
  tmp.tx_id = r.tx_id;
  tmp.chaincode = chaincode;
  tmp.rwset = r.rwset;
  tmp.result_payload = r.result_payload;
  return tmp.response_digest();
}
}  // namespace

// ---------------------------------------------------------------------------
// FabricPeer
// ---------------------------------------------------------------------------

FabricPeer::FabricPeer(net::Network& net, net::NodeId addr, std::string org,
                       MembershipService& msp, EndorsementPolicy policy,
                       std::uint64_t key_seed)
    : net_(net),
      addr_(addr),
      org_(std::move(org)),
      msp_(msp),
      policy_(policy),
      m_endorsements_(net.metrics().counter("fabric/endorsements")),
      m_txs_committed_(net.metrics().counter("fabric/txs_committed")),
      m_mvcc_conflicts_(net.metrics().counter("fabric/mvcc_conflicts")),
      m_policy_failures_(net.metrics().counter("fabric/policy_failures")),
      m_blocks_received_(net.metrics().counter("fabric/blocks_received")),
      key_(crypto::KeyAuthority::global().issue(key_seed)),
      cert_(msp.enroll(key_.public_key(), org_, "peer")) {
  net_.attach(addr_, this);
}

FabricPeer::~FabricPeer() { net_.detach(addr_); }

void FabricPeer::install(std::shared_ptr<Chaincode> chaincode) {
  chaincodes_[chaincode->name()] = std::move(chaincode);
}

void FabricPeer::handle_message(const net::Message& msg) {
  if (msg.is<fm::ProposalMsg>()) {
    const auto& p = net::payload_as<fm::ProposalMsg>(msg);
    fm::ProposalResponseMsg reply;
    reply.tx_id = p.tx_id;
    const auto cc = chaincodes_.find(p.chaincode);
    if (cc == chaincodes_.end()) {
      reply.ok = false;
      reply.result_payload = "chaincode not installed";
    } else {
      ChaincodeStub stub(state_);
      const ChaincodeResult result = cc->second->invoke(p.args, stub);
      reply.ok = result.ok;
      reply.result_payload = result.payload;
      if (result.ok) {
        reply.rwset = stub.take_rwset();
        ++stats_.endorsements;
        m_endorsements_.add();
        EndorsedTx tmp;
        tmp.tx_id = p.tx_id;
        tmp.chaincode = p.chaincode;
        tmp.rwset = reply.rwset;
        tmp.result_payload = reply.result_payload;
        reply.endorsement.endorser = cert_;
        reply.endorsement.signature = key_.sign(tmp.response_digest());
      }
    }
    net_.send(addr_, msg.from, std::move(reply),
              96 + reply.rwset.wire_size() + reply.result_payload.size());
    return;
  }
  if (msg.is<fm::BlockDeliverMsg>()) {
    const auto& block = *net::payload_as<fm::BlockDeliverMsg>(msg).block;
    if (block.number <= last_block_) return;  // duplicate delivery
    last_block_ = block.number;
    ++stats_.blocks_received;
    m_blocks_received_.add();
    commit_block(block);
    return;
  }
}

void FabricPeer::commit_block(const FabricBlock& block) {
  for (const EndorsedTx& tx : block.txs) {
    bool valid = true;
    std::string reason;

    // Endorsement policy: enough signatures from distinct orgs, each cert
    // valid under the MSP and each signature binding the same response.
    const crypto::Hash256 digest = tx.response_digest();
    std::unordered_set<std::string> orgs;
    for (const Endorsement& e : tx.endorsements) {
      if (!msp_.validate(e.endorser)) continue;
      if (e.endorser.role != "peer") continue;
      if (!crypto::KeyAuthority::global().verify(e.endorser.subject, digest,
                                                 e.signature)) {
        continue;
      }
      orgs.insert(e.endorser.org);
    }
    if (orgs.size() < policy_.required_orgs) {
      valid = false;
      reason = "endorsement policy not satisfied";
      ++stats_.policy_failures;
      m_policy_failures_.add();
    }

    // MVCC: reads must still be current.
    if (valid && !mvcc_valid(state_, tx.rwset)) {
      valid = false;
      reason = "mvcc conflict";
      ++stats_.mvcc_conflicts;
      m_mvcc_conflicts_.add();
    }

    if (valid) {
      apply_writes(state_, tx.rwset);
      ++stats_.txs_committed;
      m_txs_committed_.add();
    }
    if (commit_hook_) commit_hook_(tx, valid);
    if (event_source_ && tx.client_addr.valid()) {
      net_.send(addr_, tx.client_addr,
                fm::CommitEventMsg{tx.tx_id, valid, reason}, 64);
    }
  }
}

// ---------------------------------------------------------------------------
// SoloOrderer
// ---------------------------------------------------------------------------

SoloOrderer::SoloOrderer(net::Network& net, net::NodeId addr,
                         OrdererConfig config)
    : net_(net),
      sim_(net.simulator()),
      addr_(addr),
      config_(config),
      m_blocks_cut_(net.metrics().counter("fabric/blocks_cut")) {
  net_.attach(addr_, this);
}

SoloOrderer::~SoloOrderer() { net_.detach(addr_); }

void SoloOrderer::handle_message(const net::Message& msg) {
  if (!msg.is<fm::SubmitMsg>()) return;
  pending_.push_back(net::payload_as<fm::SubmitMsg>(msg).tx);
  if (pending_.size() >= config_.block_max_txs) {
    cut_block();
  } else if (!timer_.valid()) {
    timer_ = sim_.schedule(config_.block_timeout,
                           [this] { cut_block(); }, "fabric/block_cut");
  }
}

void SoloOrderer::cut_block() {
  timer_.cancel();
  while (!pending_.empty()) {
    auto block = std::make_shared<FabricBlock>();
    block->number = next_block_++;
    m_blocks_cut_.add();
    while (!pending_.empty() && block->txs.size() < config_.block_max_txs) {
      block->txs.push_back(std::move(pending_.front()));
      pending_.pop_front();
    }
    const std::shared_ptr<const FabricBlock> frozen = block;
    for (net::NodeId peer : peers_) {
      net_.send(addr_, peer, fm::BlockDeliverMsg{frozen},
                frozen->wire_size());
    }
    if (pending_.size() < config_.block_max_txs) break;
  }
  if (!pending_.empty() && !timer_.valid()) {
    timer_ = sim_.schedule(config_.block_timeout,
                           [this] { cut_block(); }, "fabric/block_cut");
  }
}

// ---------------------------------------------------------------------------
// RaftOrderer
// ---------------------------------------------------------------------------

RaftOrderer::RaftOrderer(net::Network& net, std::size_t nodes,
                         OrdererConfig config, bft::RaftConfig raft_config)
    : net_(net),
      sim_(net.simulator()),
      addr_(net.new_node_id()),
      config_(config),
      m_blocks_cut_(net.metrics().counter("fabric/blocks_cut")) {
  net_.attach(addr_, this);
  std::vector<net::NodeId> addrs;
  for (std::size_t i = 0; i < nodes; ++i) addrs.push_back(net.new_node_id());
  for (std::size_t i = 0; i < nodes; ++i) {
    nodes_.push_back(
        std::make_unique<bft::RaftNode>(net, addrs[i], i, raft_config));
    nodes_.back()->set_group(addrs);
    nodes_.back()->set_commit_hook(
        [this](std::uint64_t index, const bft::Command& cmd) {
          on_ordered(index, cmd);
        });
  }
  for (auto& n : nodes_) n->start();
  // Periodically (re)propose anything not yet ordered — covers leader
  // crashes between submission and commit; duplicates dedup at on_ordered.
  propose_timer_ = sim_.schedule_periodic(sim::millis(200), sim::millis(200),
                                          [this] { drive_proposals(); });
}

RaftOrderer::~RaftOrderer() {
  propose_timer_.cancel();
  timer_.cancel();
  net_.detach(addr_);
}

std::vector<bft::RaftNode*> RaftOrderer::raft_nodes() {
  std::vector<bft::RaftNode*> out;
  for (auto& n : nodes_) out.push_back(n.get());
  return out;
}

void RaftOrderer::handle_message(const net::Message& msg) {
  if (!msg.is<fm::SubmitMsg>()) return;
  const EndorsedTx& tx = net::payload_as<fm::SubmitMsg>(msg).tx;
  store_[tx.tx_id] = tx;
  unproposed_.push_back(tx.tx_id);
  drive_proposals();
}

void RaftOrderer::drive_proposals() {
  bft::RaftNode* leader = nullptr;
  for (auto& n : nodes_) {
    if (n->is_leader()) {
      leader = n.get();
      break;
    }
  }
  if (leader == nullptr) return;  // election in progress; retried by timer
  while (!unproposed_.empty()) {
    const std::uint64_t id = unproposed_.front();
    unproposed_.pop_front();
    if (ordered_seen_.count(id) > 0) continue;
    const auto it = store_.find(id);
    if (it == store_.end()) continue;
    bft::Command cmd;
    cmd.id = id;
    cmd.client = 0;
    cmd.wire_bytes = it->second.wire_size();
    if (!leader->propose(std::move(cmd))) {
      unproposed_.push_front(id);
      break;
    }
  }
  // Safety net: anything stored but never ordered gets re-queued.
  for (const auto& [id, tx] : store_) {
    if (ordered_seen_.count(id) == 0 &&
        std::find(unproposed_.begin(), unproposed_.end(), id) ==
            unproposed_.end()) {
      unproposed_.push_back(id);
    }
  }
}

void RaftOrderer::on_ordered(std::uint64_t, const bft::Command& cmd) {
  if (!ordered_seen_.insert(cmd.id).second) return;  // other replicas echo
  const auto it = store_.find(cmd.id);
  if (it == store_.end()) return;
  pending_block_.push_back(std::move(it->second));
  store_.erase(it);
  if (pending_block_.size() >= config_.block_max_txs) {
    cut_block();
  } else if (!timer_.valid()) {
    timer_ = sim_.schedule(config_.block_timeout,
                           [this] { cut_block(); }, "fabric/block_cut");
  }
}

void RaftOrderer::cut_block() {
  timer_.cancel();
  while (!pending_block_.empty()) {
    auto block = std::make_shared<FabricBlock>();
    block->number = next_block_++;
    m_blocks_cut_.add();
    while (!pending_block_.empty() &&
           block->txs.size() < config_.block_max_txs) {
      block->txs.push_back(std::move(pending_block_.front()));
      pending_block_.pop_front();
    }
    const std::shared_ptr<const FabricBlock> frozen = block;
    for (net::NodeId peer : peers_) {
      net_.send(addr_, peer, fm::BlockDeliverMsg{frozen},
                frozen->wire_size());
    }
    if (pending_block_.size() < config_.block_max_txs) break;
  }
}

// ---------------------------------------------------------------------------
// PbftOrderer
// ---------------------------------------------------------------------------

PbftOrderer::PbftOrderer(net::Network& net, std::size_t f,
                         OrdererConfig config, bft::PbftConfig pbft_config)
    : net_(net),
      sim_(net.simulator()),
      addr_(net.new_node_id()),
      config_(config),
      m_blocks_cut_(net.metrics().counter("fabric/blocks_cut")) {
  net_.attach(addr_, this);
  pbft_config.f = f;
  const std::size_t n = 3 * f + 1;
  std::vector<net::NodeId> addrs;
  for (std::size_t i = 0; i < n; ++i) addrs.push_back(net.new_node_id());
  for (std::size_t i = 0; i < n; ++i) {
    replicas_.push_back(
        std::make_unique<bft::PbftReplica>(net, addrs[i], i, pbft_config));
    replicas_.back()->set_group(addrs);
    replicas_.back()->set_commit_hook(
        [this](std::uint64_t seq, const bft::Command& cmd) {
          on_ordered(seq, cmd);
        });
  }
  client_ = std::make_unique<bft::PbftClient>(net, net.new_node_id(),
                                              /*client_id=*/1, pbft_config);
  client_->set_group(addrs);
}

PbftOrderer::~PbftOrderer() {
  timer_.cancel();
  net_.detach(addr_);
}

std::vector<bft::PbftReplica*> PbftOrderer::replicas() {
  std::vector<bft::PbftReplica*> out;
  for (auto& r : replicas_) out.push_back(r.get());
  return out;
}

void PbftOrderer::handle_message(const net::Message& msg) {
  if (!msg.is<fm::SubmitMsg>()) return;
  const EndorsedTx& tx = net::payload_as<fm::SubmitMsg>(msg).tx;
  store_[tx.tx_id] = tx;
  client_->submit(std::to_string(tx.tx_id), tx.wire_size());
}

void PbftOrderer::on_ordered(std::uint64_t, const bft::Command& cmd) {
  const std::uint64_t id = std::strtoull(cmd.op.c_str(), nullptr, 10);
  if (!ordered_seen_.insert(id).second) return;
  const auto it = store_.find(id);
  if (it == store_.end()) return;
  pending_block_.push_back(std::move(it->second));
  store_.erase(it);
  if (pending_block_.size() >= config_.block_max_txs) {
    cut_block();
  } else if (!timer_.valid()) {
    timer_ = sim_.schedule(config_.block_timeout,
                           [this] { cut_block(); }, "fabric/block_cut");
  }
}

void PbftOrderer::cut_block() {
  timer_.cancel();
  while (!pending_block_.empty()) {
    auto block = std::make_shared<FabricBlock>();
    block->number = next_block_++;
    m_blocks_cut_.add();
    while (!pending_block_.empty() &&
           block->txs.size() < config_.block_max_txs) {
      block->txs.push_back(std::move(pending_block_.front()));
      pending_block_.pop_front();
    }
    const std::shared_ptr<const FabricBlock> frozen = block;
    for (net::NodeId peer : peers_) {
      net_.send(addr_, peer, fm::BlockDeliverMsg{frozen},
                frozen->wire_size());
    }
    if (pending_block_.size() < config_.block_max_txs) break;
  }
}

// ---------------------------------------------------------------------------
// FabricClient
// ---------------------------------------------------------------------------

FabricClient::FabricClient(net::Network& net, net::NodeId addr,
                           EndorsementPolicy policy)
    : net_(net), sim_(net.simulator()), addr_(addr), policy_(policy) {
  net_.attach(addr_, this);
}

FabricClient::~FabricClient() { net_.detach(addr_); }

void FabricClient::set_endorsers(std::vector<FabricPeer*> peers) {
  endorsers_ = std::move(peers);
}

void FabricClient::invoke(const std::string& chaincode,
                          std::vector<std::string> args, InvokeCallback cb) {
  const std::uint64_t tx_id =
      (addr_.value << 24) + next_tx_++;  // globally unique per client
  PendingTx pending;
  pending.chaincode = chaincode;
  pending.cb = std::move(cb);
  pending.started = sim_.now();
  pending_.emplace(tx_id, std::move(pending));
  // One endorser per organization (the first listed for each org).
  std::unordered_set<std::string> seen_orgs;
  std::size_t args_bytes = 0;
  for (const auto& a : args) args_bytes += a.size();
  for (FabricPeer* peer : endorsers_) {
    if (!seen_orgs.insert(peer->org()).second) continue;
    net_.send(addr_, peer->addr(), fm::ProposalMsg{tx_id, chaincode, args},
              64 + args_bytes);
  }
}

void FabricClient::handle_message(const net::Message& msg) {
  if (msg.is<fm::ProposalResponseMsg>()) {
    const auto& r = net::payload_as<fm::ProposalResponseMsg>(msg);
    const auto it = pending_.find(r.tx_id);
    if (it == pending_.end() || it->second.submitted) return;
    PendingTx& tx = it->second;
    if (!r.ok) {
      // Chaincode-level failure: report immediately.
      auto cb = std::move(tx.cb);
      const sim::SimDuration latency = sim_.now() - tx.started;
      const std::string payload = r.result_payload;
      pending_.erase(it);
      ++failed_;
      if (cb) cb(false, payload, latency);
      return;
    }
    tx.responses.push_back(r);
    // All responses must agree (same read/write sets) before submitting.
    const crypto::Hash256 want =
        proposal_response_digest(tx.responses.front(), tx.chaincode);
    std::size_t matching = 0;
    for (const auto& resp : tx.responses) {
      if (proposal_response_digest(resp, tx.chaincode) == want) ++matching;
    }
    if (matching < policy_.required_orgs) return;
    EndorsedTx endorsed;
    endorsed.tx_id = r.tx_id;
    endorsed.chaincode = tx.chaincode;
    endorsed.rwset = tx.responses.front().rwset;
    endorsed.result_payload = tx.responses.front().result_payload;
    for (const auto& resp : tx.responses) {
      if (proposal_response_digest(resp, tx.chaincode) == want) {
        endorsed.endorsements.push_back(resp.endorsement);
      }
    }
    endorsed.client_addr = addr_;
    tx.submitted = true;
    if (orderer_ != nullptr) {
      const std::size_t bytes = endorsed.wire_size();
      net_.send(addr_, orderer_->submit_address(),
                fm::SubmitMsg{std::move(endorsed)}, bytes);
    }
    return;
  }
  if (msg.is<fm::CommitEventMsg>()) {
    const auto& ev = net::payload_as<fm::CommitEventMsg>(msg);
    const auto it = pending_.find(ev.tx_id);
    if (it == pending_.end()) return;
    auto cb = std::move(it->second.cb);
    const sim::SimDuration latency = sim_.now() - it->second.started;
    const std::string payload = it->second.responses.empty()
                                    ? std::string{}
                                    : it->second.responses.front()
                                          .result_payload;
    pending_.erase(it);
    if (ev.valid) {
      ++committed_;
    } else {
      ++failed_;
    }
    if (cb) cb(ev.valid, ev.valid ? payload : ev.reason, latency);
    return;
  }
}

}  // namespace decentnet::fabric
