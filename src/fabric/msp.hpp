// Membership Service Provider: the piece that makes a blockchain
// *permissioned* (§IV). A certificate authority enrolls identities with an
// organization and role; peers validate certificates before accepting
// endorsements or transactions. This replaces proof-of-work's sybil defense
// with explicit, revocable identity.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "crypto/hash.hpp"
#include "crypto/keys.hpp"

namespace decentnet::fabric {

struct Certificate {
  crypto::PublicKey subject;
  std::string org;
  std::string role;  // "peer", "orderer", "client", "admin"
  crypto::Signature ca_signature;

  crypto::Hash256 digest() const;
};

class MembershipService {
 public:
  /// A CA with a deterministic key derived from `seed`.
  explicit MembershipService(std::uint64_t seed);

  crypto::PublicKey ca_public_key() const { return ca_.public_key(); }

  /// Enroll `subject` into `org` with `role`; returns the signed cert.
  Certificate enroll(const crypto::PublicKey& subject, std::string org,
                     std::string role);

  /// Revoke a previously issued certificate.
  void revoke(const crypto::PublicKey& subject);

  /// A certificate is valid iff the CA signature checks out and the subject
  /// has not been revoked.
  bool validate(const Certificate& cert) const;

  std::size_t enrolled_count() const { return issued_; }

 private:
  crypto::PrivateKey ca_;
  std::unordered_set<crypto::PublicKey, crypto::Hash256Hasher> revoked_;
  std::size_t issued_ = 0;
};

}  // namespace decentnet::fabric
