#include "fabric/consortium.hpp"

#include <stdexcept>

namespace decentnet::fabric {

Consortium::Consortium(net::Network& net, ConsortiumConfig config)
    : net_(net),
      config_(std::move(config)),
      msp_(config_.seed),
      policy_{config_.required_endorsements} {
  if (config_.orgs.empty()) {
    throw std::invalid_argument("Consortium needs at least one org");
  }
  for (std::size_t o = 0; o < config_.orgs.size(); ++o) {
    peers_.push_back(std::make_unique<FabricPeer>(
        net_, net_.new_node_id(), config_.orgs[o], msp_, policy_,
        config_.seed * 1000 + o));
  }
  peers_.front()->set_event_source(true);
  switch (config_.orderer) {
    case OrdererType::Solo:
      solo_ = std::make_unique<SoloOrderer>(net_, net_.new_node_id(),
                                            config_.ordering);
      orderer_ = solo_.get();
      break;
    case OrdererType::Raft:
      raft_ = std::make_unique<RaftOrderer>(net_, config_.orderer_nodes,
                                            config_.ordering);
      orderer_ = raft_.get();
      break;
    case OrdererType::Pbft:
      pbft_ = std::make_unique<PbftOrderer>(net_, config_.orderer_nodes,
                                            config_.ordering);
      orderer_ = pbft_.get();
      break;
  }
  for (auto& p : peers_) orderer_->register_peer(p->addr());
  new_client();
}

void Consortium::install(std::shared_ptr<Chaincode> chaincode) {
  for (auto& p : peers_) p->install(chaincode);
}

FabricClient& Consortium::new_client() {
  clients_.push_back(
      std::make_unique<FabricClient>(net_, net_.new_node_id(), policy_));
  std::vector<FabricPeer*> endorsers;
  for (auto& p : peers_) endorsers.push_back(p.get());
  clients_.back()->set_endorsers(endorsers);
  clients_.back()->set_orderer(orderer_);
  return *clients_.back();
}

FabricPeer& Consortium::peer(const std::string& org) {
  for (auto& p : peers_) {
    if (p->org() == org) return *p;
  }
  throw std::out_of_range("no such org: " + org);
}

std::pair<bool, std::string> Consortium::invoke_sync(
    const std::string& chaincode, std::vector<std::string> args,
    sim::SimDuration max_wait) {
  bool done = false, ok = false;
  std::string payload;
  client().invoke(chaincode, std::move(args),
                  [&](bool success, const std::string& result,
                      sim::SimDuration) {
                    done = true;
                    ok = success;
                    payload = result;
                  });
  auto& sim = net_.simulator();
  const sim::SimTime deadline = sim.now() + max_wait;
  while (!done && sim.now() < deadline) {
    sim.run_until(sim.now() + sim::millis(100));
  }
  return {ok, payload};
}

}  // namespace decentnet::fabric
