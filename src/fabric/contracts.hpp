// Built-in chaincodes for the paper's §V-A "blockchain islands" use cases:
// asset transfer (the quickstart), supply-chain track & trace, healthcare
// record sharing with consent, and utility/energy trading.
//
// Each contract is a pure function of (args, stub); args[0] is the method.
#pragma once

#include "fabric/chaincode.hpp"

namespace decentnet::fabric {

/// Generic asset registry.
///   create <id> <owner> <value> | transfer <id> <new_owner> |
///   read <id> -> "owner,value"
class AssetTransferContract final : public Chaincode {
 public:
  std::string name() const override { return "asset"; }
  ChaincodeResult invoke(const std::vector<std::string>& args,
                         ChaincodeStub& stub) override;
};

/// Track & trace: products move custody along the chain without any single
/// trusted party holding the history.
///   register <item> <origin> | ship <item> <holder> | receive <item> <loc> |
///   trace <item> -> "origin;ship:holder;recv:loc;..."
class SupplyChainContract final : public Chaincode {
 public:
  std::string name() const override { return "supplychain"; }
  ChaincodeResult invoke(const std::vector<std::string>& args,
                         ChaincodeStub& stub) override;
};

/// Consent-gated health records: providers can only write/read a patient's
/// records after the patient grants access.
///   grant <patient> <provider> | revoke <patient> <provider> |
///   put <patient> <provider> <data> | get <patient> <provider>
class HealthRecordsContract final : public Chaincode {
 public:
  std::string name() const override { return "health"; }
  ChaincodeResult invoke(const std::vector<std::string>& args,
                         ChaincodeStub& stub) override;
};

/// Plain key-value chaincode — the workload generator for throughput and
/// MVCC-conflict experiments.
///   put <key> <value> | get <key> | del <key>
class KvContract final : public Chaincode {
 public:
  std::string name() const override { return "kv"; }
  ChaincodeResult invoke(const std::vector<std::string>& args,
                         ChaincodeStub& stub) override;
};

/// Peer-to-peer energy trading between prosumers on a smart grid.
///   meter <org> <kwh_signed> | offer <id> <seller> <kwh> <price> |
///   buy <id> <buyer> | balance <org> -> net kWh credit
class EnergyTradingContract final : public Chaincode {
 public:
  std::string name() const override { return "energy"; }
  ChaincodeResult invoke(const std::vector<std::string>& args,
                         ChaincodeStub& stub) override;
};

}  // namespace decentnet::fabric
