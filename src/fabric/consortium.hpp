// Consortium: one-call assembly of a permissioned channel — MSP, one
// endorsing peer per organization, a pluggable ordering service and a
// client — the way an adopter actually wants to stand up a "blockchain
// island". Examples and benches use this instead of hand-wiring.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "fabric/channel.hpp"
#include "fabric/chaincode.hpp"
#include "fabric/msp.hpp"
#include "net/network.hpp"

namespace decentnet::fabric {

enum class OrdererType : std::uint8_t { Solo, Raft, Pbft };

struct ConsortiumConfig {
  std::vector<std::string> orgs;
  std::size_t required_endorsements = 2;
  OrdererType orderer = OrdererType::Raft;
  /// Raft group size, or f for PBFT (n = 3f+1). Ignored for Solo.
  std::size_t orderer_nodes = 3;
  OrdererConfig ordering = {};
  std::uint64_t seed = 1;
};

class Consortium {
 public:
  Consortium(net::Network& net, ConsortiumConfig config);

  /// Install a chaincode on every peer.
  void install(std::shared_ptr<Chaincode> chaincode);

  /// Create an additional client wired to this channel.
  FabricClient& new_client();
  /// The default client (created on construction).
  FabricClient& client() { return *clients_.front(); }

  /// Convenience: run one invocation to completion (drives the simulator).
  /// Returns {ok, payload-or-error}.
  std::pair<bool, std::string> invoke_sync(const std::string& chaincode,
                                           std::vector<std::string> args,
                                           sim::SimDuration max_wait =
                                               sim::seconds(10));

  MembershipService& msp() { return msp_; }
  const std::vector<std::unique_ptr<FabricPeer>>& peers() const {
    return peers_;
  }
  FabricPeer& peer(const std::string& org);
  OrderingService& orderer() { return *orderer_; }

  /// Aggregate committed transactions (from the event-source peer).
  std::uint64_t committed() const {
    return peers_.front()->stats().txs_committed;
  }

 private:
  net::Network& net_;
  ConsortiumConfig config_;
  MembershipService msp_;
  EndorsementPolicy policy_;
  std::vector<std::unique_ptr<FabricPeer>> peers_;
  std::unique_ptr<SoloOrderer> solo_;
  std::unique_ptr<RaftOrderer> raft_;
  std::unique_ptr<PbftOrderer> pbft_;
  OrderingService* orderer_ = nullptr;
  std::vector<std::unique_ptr<FabricClient>> clients_;
};

}  // namespace decentnet::fabric
