// E1 — DHT lookup latency in open networks (§II-A, citing Jiménez et al.).
// "Lookups were performed within 5 seconds 90% of the time in eMule's Kad,
// but the median lookup time was around a minute in both BitTorrent DHTs."
//
// The mechanism: open DHTs accumulate dead/unreachable contacts (churn,
// NATs); every dead contact on the lookup path costs an RPC timeout. Kad
// deployments kept tables fresh and timeouts tight; BitTorrent DHT clients
// carried many stale entries and conservative timeouts.
#include <iterator>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "net/network.hpp"
#include "overlay/kademlia.hpp"
#include "sim/metrics.hpp"

using namespace decentnet;

namespace {

struct Row {
  double p50_s, p90_s, within5s, timeouts;
};

Row run(std::size_t n, double unreachable_fraction,
        sim::SimDuration rpc_timeout, std::size_t alpha, bool naive,
        std::uint64_t seed, sim::PointScope& scope) {
  sim::Simulator simu(seed);
  scope.instrument(simu);
  net::NetworkConfig net_cfg;
  net_cfg.expected_nodes = n;
  net_cfg.track_spans = true;  // lookup path lengths via causal spans
  net::Network netw(
      simu, std::make_unique<net::LogNormalLatency>(sim::millis(100), 0.5),
      net_cfg, &scope.metrics());
  overlay::KademliaConfig cfg;
  cfg.rpc_timeout = rpc_timeout;
  cfg.alpha = alpha;
  cfg.naive_eviction = naive;
  cfg.evict_on_failure = !naive;
  std::vector<std::unique_ptr<overlay::KademliaNode>> nodes;
  for (std::size_t i = 0; i < n; ++i) {
    nodes.push_back(std::make_unique<overlay::KademliaNode>(
        netw, netw.new_node_id(), cfg));
  }
  nodes[0]->join({});
  for (std::size_t i = 1; i < n; ++i) {
    nodes[i]->join({{nodes[0]->id(), nodes[0]->addr()}});
    if (i % 16 == 0) simu.run_until(simu.now() + sim::seconds(4));
  }
  simu.run_until(simu.now() + sim::minutes(2));
  // NAT the configured fraction: they can still send (and so keep pushing
  // themselves into routing tables via their own lookups and refreshes),
  // but every RPC sent *to* them times out — the connectivity defect the
  // cited measurement study found rampant in the BitTorrent DHTs.
  sim::Rng rng(seed ^ 0xD0A);
  std::vector<bool> natted(n, false);
  for (std::size_t i = 1; i < n; ++i) {
    if (rng.chance(unreachable_fraction)) {
      natted[i] = true;
      netw.set_unreachable(nodes[i]->addr(), true);
    }
  }
  // Keep the pollution alive: NATed nodes periodically look up random keys,
  // refreshing their presence in everyone's buckets.
  for (std::size_t i = 1; i < n; ++i) {
    if (!natted[i]) continue;
    overlay::KademliaNode* node = nodes[i].get();
    simu.schedule_periodic(sim::seconds(20 + i % 17), sim::seconds(45),
                           [node, &rng] {
                             overlay::Key k;
                             for (auto& b : k.bytes) {
                               b = static_cast<std::uint8_t>(rng.next());
                             }
                             node->lookup(k, [](overlay::LookupResult) {});
                           });
  }
  simu.run_until(simu.now() + sim::minutes(5));
  sim::Histogram latency;
  std::uint64_t timeouts = 0, lookups = 0;
  for (int q = 0; q < 100; ++q) {
    overlay::KademliaNode* src = nullptr;
    do {
      src = nodes[rng.uniform_int(nodes.size())].get();
    } while (netw.unreachable(src->addr()));
    const overlay::Key target =
        crypto::sha256("lookup-target-" + std::to_string(q));
    bool done = false;
    src->lookup(target, [&](overlay::LookupResult r) {
      done = true;
      latency.record(sim::to_seconds(r.elapsed));
      timeouts += r.timeouts;
    });
    simu.run_until(simu.now() + sim::minutes(3));
    if (done) ++lookups;
  }
  Row row;
  row.p50_s = latency.percentile(50);
  row.p90_s = latency.percentile(90);
  row.within5s = latency.fraction_below(5.0);
  row.timeouts = lookups == 0 ? 0
                              : static_cast<double>(timeouts) /
                                    static_cast<double>(lookups);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bench::ExperimentHarness ex("E1_dht_lookup", argc, argv, {.seed = 11});
  ex.describe(
      "E1: Kademlia lookup latency vs dead-contact fraction",
      "Kad answered 90% of lookups within 5 s; BitTorrent DHTs' median was "
      "~1 minute — same protocol, different table hygiene [Jimenez et al.]",
      "600-node Kademlia over a 100 ms-median WAN; sweep the fraction of "
      "NATed (send-only) nodes and the per-RPC timeout; 100 lookups per "
      "row");

  struct Cfg {
    const char* label;
    double natted;
    double timeout_s;
    std::size_t alpha;
    bool naive;
  };
  const Cfg profiles[] = {
      {"clean net, spec eviction (Kad-like)", 0.00, 1.0, 3, false},
      {"40% NATed, spec eviction, parallel", 0.40, 1.0, 3, false},
      {"40% NATed, naive eviction, parallel", 0.40, 2.0, 3, true},
      {"40% NATed, naive + serial (BT-like)", 0.40, 5.0, 1, true},
      {"60% NATed, naive + serial (BT-like)", 0.60, 8.0, 1, true},
  };
  // Each profile is an independent sweep point: with --jobs N the points run
  // on worker threads, each with its own Simulator and registry, and merge in
  // index order — the artifact stays byte-identical for any N. Every point
  // reuses the root seed (not seed()) to preserve the historical single-seed
  // sweep bytes.
  ex.run_points(std::size(profiles), [&](sim::PointScope& scope) {
    const Cfg& p = profiles[scope.index()];
    const Row r = run(600, p.natted, sim::seconds(p.timeout_s), p.alpha,
                      p.naive, scope.root_seed(), scope);
    scope.add_row({{"profile", p.label},
                   {"natted_pct", bench::Value(p.natted * 100, 0)},
                   {"rpc_timeout_s", bench::Value(p.timeout_s, 1)},
                   {"p50_s", bench::Value(r.p50_s, 2)},
                   {"p90_s", bench::Value(r.p90_s, 2)},
                   {"within_5s", bench::Value(r.within5s, 2)},
                   {"timeouts_per_lookup", bench::Value(r.timeouts, 1)}});
  });
  const int rc = ex.finish();
  std::printf(
      "\nThe Kad-like row reproduces '90%% within 5 s'; the BT-like rows\n"
      "(tables polluted by send-only NATed peers, serial lookups, patient\n"
      "timeouts) drive the median toward the minute the paper quotes. The\n"
      "protocol is identical — the open network's connectivity defects are\n"
      "the difference.\n");
  return rc;
}
