// E16 — Epidemic dissemination (§II, §IV).
// "Peer-to-peer research sprouted with very interesting contributions, e.g.
// gossip based protocols for scalable group communication" — the same
// primitive that floods blocks in Bitcoin and disseminates state in Fabric.
#include <algorithm>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "net/network.hpp"
#include "overlay/gossip.hpp"
#include "sim/metrics.hpp"
#include "sim/sharding.hpp"
#include "sim/telemetry.hpp"

using namespace decentnet;

namespace {

struct Row {
  double coverage;
  double mean_hops;
  double duplicates_per_node;
  double bytes_per_node;
  std::uint64_t t90_us;  // time to 90% of reached nodes, from broadcast
  std::uint64_t events;  // kernel events fired, for the events/sec cell
};

Row run(std::size_t n, std::size_t fanout, std::uint64_t seed,
        sim::ExperimentHarness& ex) {
  sim::Simulator simu(seed);
  ex.instrument(simu);
  net::Network netw(
      simu, std::make_unique<net::LogNormalLatency>(sim::millis(60), 0.4),
      net::NetworkConfig{.expected_nodes = n, .track_spans = true},
      &ex.metrics());
  overlay::GossipConfig cfg;
  cfg.fanout = fanout;
  std::vector<net::NodeId> addrs;
  for (std::size_t i = 0; i < n; ++i) addrs.push_back(netw.new_node_id());
  std::vector<std::unique_ptr<overlay::GossipNode>> nodes;
  sim::Rng rng(seed ^ 0xF0);
  sim::Histogram hops;
  std::vector<sim::SimTime> cover_times;  // first delivery per node (origin too)
  for (std::size_t i = 0; i < n; ++i) {
    nodes.push_back(
        std::make_unique<overlay::GossipNode>(netw, addrs[i], cfg));
    std::vector<net::NodeId> view;
    for (std::size_t k = 0; k < cfg.view_size / 2; ++k) {
      view.push_back(addrs[rng.uniform_int(n)]);
    }
    nodes.back()->join(view);
    nodes.back()->set_deliver_hook(
        [&hops, &cover_times, &simu](overlay::RumorId, std::size_t h) {
          hops.record(static_cast<double>(h));
          cover_times.push_back(simu.now());
        });
  }
  // --telemetry: network rates plus a coverage gauge (nodes the rumor has
  // reached). Registered after instrument() (attach resets the registry).
  if (sim::Telemetry* const tel = ex.telemetry()) {
    netw.register_telemetry(*tel);
    const std::vector<sim::SimTime>* const cov = &cover_times;
    tel->add_gauge("e16/covered", 0, [cov](sim::SimTime) {
      return static_cast<double>(cov->size());
    });
  }
  simu.run_until(sim::minutes(3));  // let peer sampling mix views
  const auto bytes_before = netw.bytes_sent();
  const sim::SimTime t0 = simu.now();
  nodes[0]->broadcast(/*rumor=*/1, /*payload_bytes=*/512);
  simu.run_until(simu.now() + sim::minutes(2));
  Row row;
  std::size_t reached = 0;
  std::uint64_t dups = 0;
  for (const auto& node : nodes) {
    if (node->has_seen(1)) ++reached;
    dups += node->duplicates_received();
  }
  row.coverage = static_cast<double>(reached) / static_cast<double>(n);
  row.mean_hops = hops.mean();
  row.duplicates_per_node =
      static_cast<double>(dups) / static_cast<double>(n);
  row.bytes_per_node = static_cast<double>(netw.bytes_sent() - bytes_before) /
                       static_cast<double>(n);
  // Time to 90% coverage of the nodes actually reached, measured from the
  // broadcast instant. decentnet-trace derives the same number from the
  // rumor's span tree, so for a given seed the two must agree exactly.
  row.t90_us = 0;
  if (!cover_times.empty()) {
    std::sort(cover_times.begin(), cover_times.end());
    const std::size_t pop = cover_times.size();
    const std::size_t k = (pop * 9 + 9) / 10;  // ceil(0.9 * pop)
    row.t90_us = static_cast<std::uint64_t>(cover_times[k - 1] - t0);
  }
  ex.metrics().histogram("overlay/gossip_t90_us")
      .record(static_cast<double>(row.t90_us));
  row.events = simu.total_events_processed();
  return row;
}

/// Sharded counterpart of run(): same population and workload on a
/// sim::ShardedKernel (--sim-shards S). The broadcast is posted as an event
/// on the origin's shard at exactly t=3min (the driver thread cannot inject
/// mid-window), and per-delivery samples land in per-shard buffers merged in
/// shard order, so the artifact is byte-identical at any --sim-threads. The
/// 10 ms latency floor is the kernel's lookahead window (clamps well under
/// 0.1% of the 60 ms-median lognormal draws).
Row run_sharded(std::size_t n, std::size_t fanout, std::uint64_t seed,
                std::size_t shards, std::size_t threads,
                sim::ExperimentHarness& ex) {
  sim::ShardedKernel kernel(seed, shards);
  ex.instrument(kernel);
  net::Network netw(
      kernel.shard(0),
      std::make_unique<net::LogNormalLatency>(sim::millis(60), 0.4,
                                              sim::millis(10)),
      net::NetworkConfig{.expected_nodes = n, .track_spans = true},
      &ex.metrics());
  netw.enable_sharding(kernel);
  overlay::GossipConfig cfg;
  cfg.fanout = fanout;
  std::vector<net::NodeId> addrs;
  for (std::size_t i = 0; i < n; ++i) addrs.push_back(netw.new_node_id());
  for (std::size_t i = 0; i < n; ++i) netw.register_node(addrs[i]);
  // (hop count, delivery time) per receiving shard — single writer each.
  // Declared before the nodes so the hooks never outlive their buffer.
  struct Delivery {
    std::size_t hops;
    sim::SimTime at;
  };
  std::vector<std::vector<Delivery>> deliv(shards);
  std::vector<std::unique_ptr<overlay::GossipNode>> nodes;
  sim::Rng rng(seed ^ 0xF0);
  for (std::size_t i = 0; i < n; ++i) {
    nodes.push_back(
        std::make_unique<overlay::GossipNode>(netw, addrs[i], cfg));
    std::vector<net::NodeId> view;
    for (std::size_t k = 0; k < cfg.view_size / 2; ++k) {
      view.push_back(addrs[rng.uniform_int(n)]);
    }
    nodes.back()->join(view);
    const std::size_t sh = kernel.shard_of(addrs[i].value);
    sim::Simulator* nsim = &netw.simulator_for(addrs[i]);
    nodes.back()->set_deliver_hook(
        [&deliv, sh, nsim](overlay::RumorId, std::size_t h) {
          deliv[sh].push_back({h, nsim->now()});
        });
  }
  // Same health series as run(); coverage is per receiving shard (the
  // buffers are single-writer and the driver samples at barriers).
  if (sim::Telemetry* const tel = ex.telemetry()) {
    netw.register_telemetry(*tel);
    for (std::size_t sh = 0; sh < shards; ++sh) {
      const std::vector<Delivery>* const cov = &deliv[sh];
      tel->add_gauge("e16/covered", static_cast<std::uint32_t>(sh),
                     [cov](sim::SimTime) {
                       return static_cast<double>(cov->size());
                     });
    }
  }
  kernel.run_until(sim::minutes(3), threads);  // let peer sampling mix views
  const auto bytes_before = netw.bytes_sent();
  const sim::SimTime t0 = sim::minutes(3);
  netw.simulator_for(addrs[0])
      .post(t0, [&] { nodes[0]->broadcast(/*rumor=*/1, /*payload=*/512); });
  kernel.run_until(t0 + sim::minutes(2), threads);
  kernel.merge_metrics_into(ex.metrics());

  sim::Histogram hops;
  std::vector<sim::SimTime> cover_times;
  for (std::size_t sh = 0; sh < shards; ++sh) {
    for (const Delivery& d : deliv[sh]) {
      hops.record(static_cast<double>(d.hops));
      cover_times.push_back(d.at);
    }
  }
  Row row;
  std::size_t reached = 0;
  std::uint64_t dups = 0;
  for (const auto& node : nodes) {
    if (node->has_seen(1)) ++reached;
    dups += node->duplicates_received();
  }
  row.coverage = static_cast<double>(reached) / static_cast<double>(n);
  row.mean_hops = hops.mean();
  row.duplicates_per_node =
      static_cast<double>(dups) / static_cast<double>(n);
  row.bytes_per_node = static_cast<double>(netw.bytes_sent() - bytes_before) /
                       static_cast<double>(n);
  row.t90_us = 0;
  if (!cover_times.empty()) {
    std::sort(cover_times.begin(), cover_times.end());
    const std::size_t pop = cover_times.size();
    const std::size_t k = (pop * 9 + 9) / 10;  // ceil(0.9 * pop)
    row.t90_us = static_cast<std::uint64_t>(cover_times[k - 1] - t0);
  }
  ex.metrics().histogram("overlay/gossip_t90_us")
      .record(static_cast<double>(row.t90_us));
  row.events = kernel.total_events_processed();
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bench::ExperimentHarness ex("E16_gossip", argc, argv, {.seed = 21, .shard_aware = true});
  ex.describe(
      "E16: epidemic broadcast coverage vs fanout and size",
      "push gossip reaches (almost) everyone in O(log n) hops once fanout "
      "clears the epidemic threshold; below it, rumors die out — redundancy "
      "is the price of probabilistic reliability",
      "Cyclon peer sampling + infect-and-die push; sweep fanout at n=500 "
      "and network size at fanout=4");

  const std::size_t shards = ex.sim_shards();
  const std::size_t threads = ex.sim_threads();
  if (shards > 1) ex.set_param("sim_shards", std::uint64_t{shards});
  auto run_one = [&](std::size_t n, std::size_t fanout, std::uint64_t seed) {
    return shards > 1 ? run_sharded(n, fanout, seed, shards, threads, ex)
                      : run(n, fanout, seed, ex);
  };

  // The throughput triplet rides along as table-only timing cells (the
  // default append_timing_cells mode), so BENCH_E16_gossip.json stays
  // byte-identical across runs, --jobs and --sim-threads.
  for (const std::size_t fanout : {1u, 2u, 3u, 4u, 6u, 8u}) {
    const bench::WallClock wall;
    const Row r = run_one(500, fanout, ex.seed());
    std::vector<std::pair<std::string, bench::Value>> row{
        {"sweep", "fanout"},
        {"n", std::uint64_t{500}},
        {"fanout", std::uint64_t{fanout}},
        {"coverage", bench::Value(r.coverage, 3)},
        {"mean_hops", bench::Value(r.mean_hops, 1)},
        {"dups_per_node", bench::Value(r.duplicates_per_node, 2)},
        {"bytes_per_node", bench::Value(r.bytes_per_node, 0)},
        {"t90_us", r.t90_us}};
    bench::append_timing_cells(row, wall, r.events);
    ex.add_row(std::move(row));
  }
  for (const std::size_t n : {100u, 300u, 1000u, 3000u}) {
    const bench::WallClock wall;
    const Row r = run_one(n, 4, ex.seed() + 1);
    std::vector<std::pair<std::string, bench::Value>> row{
        {"sweep", "size"},
        {"n", std::uint64_t{n}},
        {"fanout", std::uint64_t{4}},
        {"coverage", bench::Value(r.coverage, 3)},
        {"mean_hops", bench::Value(r.mean_hops, 1)},
        {"dups_per_node", bench::Value(r.duplicates_per_node, 2)},
        {"t90_us", r.t90_us}};
    bench::append_timing_cells(row, wall, r.events);
    ex.add_row(std::move(row));
  }
  const int rc = ex.finish();
  std::printf(
      "\nHop counts grow logarithmically with n while coverage holds — the\n"
      "scalable-dissemination result that cloud systems (Dynamo, Cassandra)\n"
      "and every blockchain mesh inherited from P2P research.\n");
  return rc;
}
