// E18 — Layer-2 payment channels (§III-C Problem 2).
// "The so-called layer 2 or off-chain solutions like Lightning network
// (Bitcoin), Plasma (Ethereum) or EOS follow this trend. In these cases,
// transactions are processed by a much smaller set of peers to increase
// performance" — i.e. the throughput fix re-centralizes.
#include "bench_util.hpp"
#include "chain/channels.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"

using namespace decentnet;

namespace {

struct Row {
  double success;
  double mean_hops;
  double routing_gini;
  std::size_t routing_nakamoto;
  double top3_share;
};

Row drive(chain::ChannelNetwork& net, std::size_t payments,
          std::int64_t max_amount, sim::Rng& rng) {
  const std::size_t n = net.node_count();
  std::size_t ok = 0;
  double hops = 0;
  for (std::size_t i = 0; i < payments; ++i) {
    const std::size_t a = rng.uniform_int(n);
    std::size_t b = rng.uniform_int(n);
    if (b == a) b = (b + 1) % n;
    const auto amount =
        static_cast<std::int64_t>(1 + rng.uniform_int(
                                          static_cast<std::uint64_t>(max_amount)));
    const auto r = net.pay(a, b, amount);
    if (r.ok) {
      ++ok;
      hops += static_cast<double>(r.hops);
    }
  }
  Row row;
  row.success = static_cast<double>(ok) / static_cast<double>(payments);
  row.mean_hops = ok == 0 ? 0 : hops / static_cast<double>(ok);
  const auto load = net.forwarding_load();
  row.routing_gini = sim::gini(load);
  row.routing_nakamoto = sim::nakamoto_coefficient(load);
  row.top3_share = sim::top_k_share(load, 3);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bench::ExperimentHarness ex("E18_layer2", argc, argv, {.seed = 77});
  ex.describe(
      "E18: off-chain payment channels — throughput vs re-centralization",
      "layer-2 escapes the E5 throughput ceiling (payments no longer touch "
      "the chain) but traffic concentrates through a few well-funded hubs — "
      "'processed by a much smaller set of peers'",
      "500 participants, 20k payments; hub-and-spoke (3 hubs, what "
      "liquidity economics produces) vs an idealized symmetric mesh; "
      "routing-power concentration measured over intermediaries");

  sim::Rng rng(ex.seed());
  {
    auto hub = chain::make_hub_topology(500, 3, 500, 2'000'000, rng);
    const Row r = drive(hub, 20'000, 40, rng);
    ex.add_row({{"topology", "hub-and-spoke (3 hubs)"},
                {"success", bench::Value(r.success, 3)},
                {"mean_hops", bench::Value(r.mean_hops, 2)},
                {"routing_gini", bench::Value(r.routing_gini, 3)},
                {"routing_nakamoto", std::uint64_t{r.routing_nakamoto}},
                {"top3_route_share", bench::Value(r.top3_share, 3)}});
  }
  {
    auto mesh = chain::make_mesh_topology(500, 4, 500, rng);
    const Row r = drive(mesh, 20'000, 40, rng);
    ex.add_row({{"topology", "symmetric mesh (4 ch/node)"},
                {"success", bench::Value(r.success, 3)},
                {"mean_hops", bench::Value(r.mean_hops, 2)},
                {"routing_gini", bench::Value(r.routing_gini, 3)},
                {"routing_nakamoto", std::uint64_t{r.routing_nakamoto}},
                {"top3_route_share", bench::Value(r.top3_share, 3)}});
  }
  const int rc = ex.finish();

  std::printf(
      "\nOn-chain equivalence: 20k payments would need ~%.0f Bitcoin blocks\n"
      "(~%.0f hours of global consensus); off-chain they are instant local\n"
      "state updates. The price appears in the right-hand columns: in the\n"
      "hub topology three nodes carry almost all routed value — the 'much\n"
      "smaller set of peers' the paper warns the scaling roadmap leads to.\n",
      20000.0 / 4000.0, 20000.0 / 4000.0 / 6.0);
  return rc;
}
