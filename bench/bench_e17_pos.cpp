// E17 — Proof-of-stake (§III-C aside, reference [32]).
// "Alternative approaches based on proof-of-X, where X could be stake,
// space, activity, etc. seem not be able to fully address this problem so
// far" — citing Houy, "It will cost you nothing to 'kill' a proof-of-stake
// crypto-currency".
#include "bench_util.hpp"
#include "chain/pos.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"

using namespace decentnet;

int main(int argc, char** argv) {
  bench::ExperimentHarness ex("E17_pos", argc, argv, {.seed = 2});
  ex.describe(
      "E17: proof-of-stake — participation gates and attack economics",
      "PoS removes the energy burn but not the concentration pressure "
      "(minimum stakes and operating costs gate out small holders), and "
      "Houy's argument: an attacker who can hedge recovers most of the "
      "stake outlay, so 'killing' the chain can cost almost nothing",
      "(a) compounding-reward stake dynamics, 1000 validators x 500k "
      "slots, sweeping participation gates; (b) net attack cost vs hedge "
      "recovery, compared with the PoW equivalent");

  struct Cfg {
    const char* label;
    double non_staking;
    double min_stake_rel;
  };
  const Cfg rows[] = {
      {"everyone stakes", 0.0, 0.0},
      {"20% priced out", 0.2, 0.0},
      {"min stake = 2x mean", 0.0, 2.0},
      {"min stake = 2x mean + 30% out", 0.3, 2.0},
  };
  for (const auto& r : rows) {
    chain::StakeSimConfig cfg;
    cfg.validators = 1000;
    cfg.slots = 500'000;
    cfg.non_staking_fraction = r.non_staking;
    cfg.min_stake_rel = r.min_stake_rel;
    sim::Rng rng0(ex.seed());
    std::vector<double> initial(cfg.validators);
    for (auto& s : initial) s = rng0.pareto(1.0, cfg.initial_pareto_alpha);
    sim::Rng rng(ex.seed());
    const auto final_stake = chain::simulate_stake_concentration(cfg, rng);
    ex.add_row(
        {{"kind", "stake_concentration"},
         {"participation", r.label},
         {"gini_initial", bench::Value(sim::gini(initial), 3)},
         {"gini_final", bench::Value(sim::gini(final_stake), 3)},
         {"nakamoto_coeff",
          std::uint64_t{sim::nakamoto_coefficient(final_stake)}},
         {"top6_share", bench::Value(sim::top_k_share(final_stake, 6), 3)}});
  }
  for (const double recovery : {0.0, 0.5, 0.9, 0.99}) {
    chain::PosAttackParams p;
    p.total_stake_value_usd = 1e9;
    p.recovery_fraction = recovery;
    const auto c = chain::pos_attack_cost(p);
    ex.add_row({{"kind", "attack_cost"},
                {"attack", "PoS, hedge recovers " +
                               std::to_string(
                                   static_cast<int>(recovery * 100)) +
                               "%"},
                {"outlay_usd_M", bench::Value(c.outlay_usd / 1e6, 0)},
                {"net_cost_usd_M", bench::Value(c.net_cost_usd / 1e6, 1)}});
  }
  {
    chain::PowAttackParams p;
    const auto c = chain::pow_attack_cost(p);
    ex.add_row({{"kind", "attack_cost"},
                {"attack", "PoW, 6h 51% (own hardware)"},
                {"outlay_usd_M", bench::Value(c.outlay_usd / 1e6, 0)},
                {"net_cost_usd_M", bench::Value(c.net_cost_usd / 1e6, 1)}});
  }
  const int rc = ex.finish();
  std::printf(
      "\nWith universal participation, compounding rewards are a fair\n"
      "lottery (Gini barely moves); realistic participation gates reproduce\n"
      "the concentration of E7 without burning a single joule. And on the\n"
      "attack side, the better the attacker's hedge, the closer 'killing'\n"
      "the PoS chain gets to free — the paper's reference [32] in numbers.\n");
  return rc;
}
