// E5 — Throughput: permissionless chains vs a partitioned cloud backend
// (§III-C Problem 2).
// "While VISA is processing 24,000 transactions per second, Bitcoin can
// process between 3.3 and 7 transactions per second, and Ethereum around 15
// per second."
//
// All three systems run on the same simulated network substrate; absolute
// numbers are simulator-scale, the ordering and the orders-of-magnitude gap
// are the result.
#include "bench_util.hpp"
#include "core/scenarios.hpp"

using namespace decentnet;

int main(int argc, char** argv) {
  bench::ExperimentHarness ex("E5_throughput", argc, argv, {.seed = 42});
  ex.describe(
      "E5: transactions per second across architectures",
      "Bitcoin 3.3-7 tps, Ethereum ~15 tps, VISA ~24,000 tps: global "
      "broadcast + full replication caps throughput at one node's capacity, "
      "while a shared-nothing partitioned backend scales linearly",
      "full-protocol simulations: PoW gossip networks with Bitcoin-like and "
      "Ethereum-like parameters under saturating load, and a Raft-replicated "
      "partitioned commit substrate (the cloud/VISA architecture)");

  // The four systems are independent sweep points (each scenario builds its
  // own Simulator from the root seed), so with --jobs N they run on worker
  // threads; rows merge in index order and the artifact bytes don't depend
  // on N.
  ex.run_points(4, [&](sim::PointScope& scope) {
    switch (scope.index()) {
      case 0: {
        core::PowScenarioConfig cfg;
        cfg.params = chain::ChainParams::bitcoin();
        cfg.params.retarget_window = 0;
        cfg.params.initial_difficulty = 1e9;
        cfg.total_hashrate = 1e9 / 600.0;  // one block / 10 min
        cfg.nodes = 32;
        cfg.miners = 10;
        cfg.wallets = 48;
        cfg.tx_rate_per_sec = 10;  // saturating: capacity is ~6.7 tps
        cfg.common.duration = sim::hours(3);
        const auto r = core::run_pow_scenario(cfg, scope);
        scope.add_row({{"system", "Bitcoin-like PoW"},
                       {"tps", bench::Value(r.throughput_tps, 1)},
                       {"block_interval_s",
                        bench::Value(r.mean_block_interval_s, 0)},
                       {"stale_rate", bench::Value(r.stale_rate, 4)},
                       {"offered_tps", 10},
                       {"notes", "1MB blocks / 10 min"}});
        break;
      }
      case 1: {
        core::PowScenarioConfig cfg;
        cfg.params = chain::ChainParams::ethereum();
        cfg.params.retarget_window = 0;
        cfg.params.initial_difficulty = 13e6;
        cfg.total_hashrate = 13e6 / 13.0;  // one block / 13 s
        cfg.nodes = 32;
        cfg.miners = 10;
        cfg.wallets = 48;
        cfg.tx_rate_per_sec = 30;  // capacity ~17 tps
        cfg.common.duration = sim::minutes(30);
        const auto r = core::run_pow_scenario(cfg, scope);
        scope.add_row({{"system", "Ethereum-like PoW"},
                       {"tps", bench::Value(r.throughput_tps, 1)},
                       {"block_interval_s",
                        bench::Value(r.mean_block_interval_s, 1)},
                       {"stale_rate", bench::Value(r.stale_rate, 4)},
                       {"offered_tps", 30},
                       {"notes", "60KB blocks / 13 s"}});
        break;
      }
      case 2: {
        core::PartitionedScenarioConfig cfg;
        cfg.partitions = 16;
        cfg.replicas = 3;
        cfg.tx_rate_per_sec = 8000;
        cfg.common.duration = sim::seconds(20);
        const auto r = core::run_partitioned_scenario(cfg, scope);
        scope.add_row({{"system", "Partitioned cloud (16 shards)"},
                       {"tps", bench::Value(r.throughput_tps, 0)},
                       {"offered_tps", 8000},
                       {"p50_latency_ms", bench::Value(r.latency_p50_ms, 0)}});
        break;
      }
      default: {
        core::PartitionedScenarioConfig cfg;
        cfg.partitions = 48;
        cfg.replicas = 3;
        cfg.tx_rate_per_sec = 24000;
        cfg.common.duration = sim::seconds(10);
        const auto r = core::run_partitioned_scenario(cfg, scope);
        scope.add_row({{"system", "Partitioned cloud (48 shards)"},
                       {"tps", bench::Value(r.throughput_tps, 0)},
                       {"offered_tps", 24000},
                       {"p50_latency_ms", bench::Value(r.latency_p50_ms, 0)}});
        break;
      }
    }
  });
  const int rc = ex.finish();
  std::printf(
      "\nThe PoW rows are capped near block_bytes/(tx_bytes*interval) no\n"
      "matter the offered load; the partitioned rows track offered load —\n"
      "add shards, get throughput. That is the paper's VISA contrast.\n");
  return rc;
}
