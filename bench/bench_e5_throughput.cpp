// E5 — Throughput: permissionless chains vs a partitioned cloud backend
// (§III-C Problem 2).
// "While VISA is processing 24,000 transactions per second, Bitcoin can
// process between 3.3 and 7 transactions per second, and Ethereum around 15
// per second."
//
// All three systems run on the same simulated network substrate; absolute
// numbers are simulator-scale, the ordering and the orders-of-magnitude gap
// are the result.
#include "bench_util.hpp"
#include "core/scenarios.hpp"

using namespace decentnet;

int main() {
  bench::banner(
      "E5: transactions per second across architectures",
      "Bitcoin 3.3-7 tps, Ethereum ~15 tps, VISA ~24,000 tps: global "
      "broadcast + full replication caps throughput at one node's capacity, "
      "while a shared-nothing partitioned backend scales linearly",
      "full-protocol simulations: PoW gossip networks with Bitcoin-like and "
      "Ethereum-like parameters under saturating load, and a Raft-replicated "
      "partitioned commit substrate (the cloud/VISA architecture)");

  bench::Table t("architecture comparison (same network substrate)");
  t.set_header({"system", "tps", "block_interval_s", "stale_rate",
                "offered_tps", "notes"});

  {
    core::PowScenarioConfig cfg;
    cfg.params = chain::ChainParams::bitcoin();
    cfg.params.retarget_window = 0;
    cfg.params.initial_difficulty = 1e9;
    cfg.total_hashrate = 1e9 / 600.0;  // one block / 10 min
    cfg.nodes = 32;
    cfg.miners = 10;
    cfg.wallets = 48;
    cfg.tx_rate_per_sec = 10;  // saturating: capacity is ~6.7 tps
    cfg.duration = sim::hours(3);
    const auto r = core::run_pow_scenario(cfg);
    t.add_row({"Bitcoin-like PoW", sim::Table::num(r.throughput_tps, 1),
               sim::Table::num(r.mean_block_interval_s, 0),
               sim::Table::num(r.stale_rate, 4),
               sim::Table::num(10, 0), "1MB blocks / 10 min"});
  }
  {
    core::PowScenarioConfig cfg;
    cfg.params = chain::ChainParams::ethereum();
    cfg.params.retarget_window = 0;
    cfg.params.initial_difficulty = 13e6;
    cfg.total_hashrate = 13e6 / 13.0;  // one block / 13 s
    cfg.nodes = 32;
    cfg.miners = 10;
    cfg.wallets = 48;
    cfg.tx_rate_per_sec = 30;  // capacity ~17 tps
    cfg.duration = sim::minutes(30);
    const auto r = core::run_pow_scenario(cfg);
    t.add_row({"Ethereum-like PoW", sim::Table::num(r.throughput_tps, 1),
               sim::Table::num(r.mean_block_interval_s, 1),
               sim::Table::num(r.stale_rate, 4),
               sim::Table::num(30, 0), "60KB blocks / 13 s"});
  }
  {
    core::PartitionedScenarioConfig cfg;
    cfg.partitions = 16;
    cfg.replicas = 3;
    cfg.tx_rate_per_sec = 8000;
    cfg.duration = sim::seconds(20);
    const auto r = core::run_partitioned_scenario(cfg);
    t.add_row({"Partitioned cloud (16 shards)",
               sim::Table::num(r.throughput_tps, 0), "-", "-",
               sim::Table::num(8000, 0),
               "p50 " + sim::Table::num(r.latency_p50_ms, 0) + "ms"});
  }
  {
    core::PartitionedScenarioConfig cfg;
    cfg.partitions = 48;
    cfg.replicas = 3;
    cfg.tx_rate_per_sec = 24000;
    cfg.duration = sim::seconds(10);
    const auto r = core::run_partitioned_scenario(cfg);
    t.add_row({"Partitioned cloud (48 shards)",
               sim::Table::num(r.throughput_tps, 0), "-", "-",
               sim::Table::num(24000, 0),
               "p50 " + sim::Table::num(r.latency_p50_ms, 0) + "ms"});
  }
  t.print();
  std::printf(
      "\nThe PoW rows are capped near block_bytes/(tx_bytes*interval) no\n"
      "matter the offered load; the partitioned rows track offered load —\n"
      "add shards, get throughput. That is the paper's VISA contrast.\n");
  return 0;
}
