// Ablation: the exponential-race mining model (DESIGN.md substitution).
//
// The simulator replaces nonce grinding with per-miner exponential clocks.
// This bench validates the substitution's two load-bearing properties —
// (1) revenue proportional to hash share and (2) exponential block
// inter-arrival at the configured difficulty — by running the full
// networked miner stack and comparing against theory.
#include "bench_util.hpp"
#include "chain/miner.hpp"
#include "chain/node.hpp"
#include "chain/wallet.hpp"
#include "net/network.hpp"
#include "sim/metrics.hpp"

using namespace decentnet;

int main(int argc, char** argv) {
  bench::ExperimentHarness ex("ablate_mining", argc, argv, {.seed = 1234});
  ex.describe(
      "Ablation: exponential-race mining vs theory",
      "(substitution check, not a paper claim) simulated mining must give "
      "hash-share-proportional revenue and exponential inter-block times",
      "3 miners at 50/30/20% of hash power on one 6-node network, fixed "
      "difficulty, ~2000 blocks; compare revenue shares and the "
      "inter-arrival CV against the exponential's CV of 1.0");

  sim::Simulator simu(ex.seed());
  ex.instrument(simu);
  net::Network netw(simu,
                    std::make_unique<net::ConstantLatency>(sim::millis(20)),
                    net::NetworkConfig{.expected_nodes = 6},
                    &ex.metrics());
  chain::ChainParams params;
  params.retarget_window = 0;
  params.initial_difficulty = 1e6;
  params.target_block_interval = sim::seconds(30);
  const chain::Wallet w0 = chain::Wallet::from_seed(1);
  const auto genesis = chain::make_genesis(w0.address(), 100,
                                           params.initial_difficulty);
  std::vector<std::unique_ptr<chain::FullNode>> nodes;
  std::vector<net::NodeId> addrs;
  for (int i = 0; i < 6; ++i) addrs.push_back(netw.new_node_id());
  for (int i = 0; i < 6; ++i) {
    nodes.push_back(
        std::make_unique<chain::FullNode>(netw, addrs[static_cast<std::size_t>(i)], params, genesis));
    std::vector<net::NodeId> nbrs;
    for (int j = 0; j < 6; ++j) {
      if (j != i) nbrs.push_back(addrs[static_cast<std::size_t>(j)]);
    }
    nodes.back()->connect(std::move(nbrs));
  }
  const double total_rate = params.initial_difficulty / 30.0;
  const double shares[3] = {0.5, 0.3, 0.2};
  std::vector<std::unique_ptr<chain::Miner>> miners;
  std::vector<chain::Wallet> payouts;
  for (int m = 0; m < 3; ++m) {
    payouts.push_back(chain::Wallet::from_seed(100 + static_cast<std::uint64_t>(m)));
    miners.push_back(std::make_unique<chain::Miner>(
        *nodes[static_cast<std::size_t>(m)], payouts.back().address(),
        total_rate * shares[m]));
    miners.back()->start();
  }
  // Record inter-arrival times at an observer node.
  sim::Histogram gaps;
  sim::SimTime last_tip_change = 0;
  nodes[5]->add_tip_hook([&] {
    gaps.record(sim::to_seconds(simu.now() - last_tip_change));
    last_tip_change = simu.now();
  });
  simu.run_until(sim::seconds(30) * 2000);
  for (auto& m : miners) m->stop();
  simu.run_until(simu.now() + sim::minutes(2));

  const auto chain_blocks = nodes[5]->tree().active_chain();
  std::uint64_t counts[3] = {0, 0, 0};
  std::uint64_t total = 0;
  for (const auto& b : chain_blocks) {
    for (int m = 0; m < 3; ++m) {
      if (b->header.miner == payouts[static_cast<std::size_t>(m)].address()) {
        ++counts[m];
        ++total;
      }
    }
  }
  for (int m = 0; m < 3; ++m) {
    ex.add_row({{"kind", "revenue_share"},
                {"miner", "miner" + std::to_string(m)},
                {"hash_share", bench::Value(shares[m], 2)},
                {"block_share",
                 bench::Value(static_cast<double>(counts[m]) /
                                  static_cast<double>(total),
                              3)},
                {"blocks", counts[m]}});
  }

  const double mean = gaps.mean();
  const double cv = mean > 0 ? gaps.stddev() / mean : 0;
  ex.add_row({{"kind", "inter_arrival"},
              {"metric", "mean_s"},
              {"value", bench::Value(mean, 1)},
              {"theory", "30.0"}});
  ex.add_row({{"kind", "inter_arrival"},
              {"metric", "coefficient_of_variation"},
              {"value", bench::Value(cv, 2)},
              {"theory", "1.00 (exponential)"}});
  ex.add_row({{"kind", "inter_arrival"},
              {"metric", "p50_s"},
              {"value", bench::Value(gaps.percentile(50), 1)},
              {"theory", "20.8 (ln2 * mean)"}});
  return ex.finish();
}
