// Ablation: the exponential-race mining model (DESIGN.md substitution).
//
// The simulator replaces nonce grinding with per-miner exponential clocks.
// This bench validates the substitution's two load-bearing properties —
// (1) revenue proportional to hash share and (2) exponential block
// inter-arrival at the configured difficulty — by running the full
// networked miner stack and comparing against theory.
#include "bench_util.hpp"
#include "chain/miner.hpp"
#include "chain/node.hpp"
#include "chain/wallet.hpp"
#include "net/network.hpp"
#include "sim/metrics.hpp"

using namespace decentnet;

int main() {
  bench::banner(
      "Ablation: exponential-race mining vs theory",
      "(substitution check, not a paper claim) simulated mining must give "
      "hash-share-proportional revenue and exponential inter-block times",
      "3 miners at 50/30/20% of hash power on one 6-node network, fixed "
      "difficulty, ~2000 blocks; compare revenue shares and the "
      "inter-arrival CV against the exponential's CV of 1.0");

  sim::Simulator simu(1234);
  net::Network netw(simu,
                    std::make_unique<net::ConstantLatency>(sim::millis(20)));
  chain::ChainParams params;
  params.retarget_window = 0;
  params.initial_difficulty = 1e6;
  params.target_block_interval = sim::seconds(30);
  const chain::Wallet w0 = chain::Wallet::from_seed(1);
  const auto genesis = chain::make_genesis(w0.address(), 100,
                                           params.initial_difficulty);
  std::vector<std::unique_ptr<chain::FullNode>> nodes;
  std::vector<net::NodeId> addrs;
  for (int i = 0; i < 6; ++i) addrs.push_back(netw.new_node_id());
  for (int i = 0; i < 6; ++i) {
    nodes.push_back(
        std::make_unique<chain::FullNode>(netw, addrs[static_cast<std::size_t>(i)], params, genesis));
    std::vector<net::NodeId> nbrs;
    for (int j = 0; j < 6; ++j) {
      if (j != i) nbrs.push_back(addrs[static_cast<std::size_t>(j)]);
    }
    nodes.back()->connect(std::move(nbrs));
  }
  const double total_rate = params.initial_difficulty / 30.0;
  const double shares[3] = {0.5, 0.3, 0.2};
  std::vector<std::unique_ptr<chain::Miner>> miners;
  std::vector<chain::Wallet> payouts;
  for (int m = 0; m < 3; ++m) {
    payouts.push_back(chain::Wallet::from_seed(100 + static_cast<std::uint64_t>(m)));
    miners.push_back(std::make_unique<chain::Miner>(
        *nodes[static_cast<std::size_t>(m)], payouts.back().address(),
        total_rate * shares[m]));
    miners.back()->start();
  }
  // Record inter-arrival times at an observer node.
  sim::Histogram gaps;
  sim::SimTime last_tip_change = 0;
  nodes[5]->add_tip_hook([&] {
    gaps.record(sim::to_seconds(simu.now() - last_tip_change));
    last_tip_change = simu.now();
  });
  simu.run_until(sim::seconds(30) * 2000);
  for (auto& m : miners) m->stop();
  simu.run_until(simu.now() + sim::minutes(2));

  const auto chain_blocks = nodes[5]->tree().active_chain();
  std::uint64_t counts[3] = {0, 0, 0};
  std::uint64_t total = 0;
  for (const auto& b : chain_blocks) {
    for (int m = 0; m < 3; ++m) {
      if (b->header.miner == payouts[static_cast<std::size_t>(m)].address()) {
        ++counts[m];
        ++total;
      }
    }
  }
  bench::Table t("revenue share vs hash share (" + std::to_string(total) +
                 " blocks)");
  t.set_header({"miner", "hash_share", "block_share", "blocks"});
  for (int m = 0; m < 3; ++m) {
    t.add_row({"miner" + std::to_string(m), sim::Table::num(shares[m], 2),
               sim::Table::num(static_cast<double>(counts[m]) /
                                   static_cast<double>(total),
                               3),
               std::to_string(counts[m])});
  }
  t.print();

  const double mean = gaps.mean();
  const double cv = mean > 0 ? gaps.stddev() / mean : 0;
  bench::Table t2("block inter-arrival statistics");
  t2.set_header({"metric", "value", "theory"});
  t2.add_row({"mean_s", sim::Table::num(mean, 1), "30.0"});
  t2.add_row({"coefficient_of_variation", sim::Table::num(cv, 2),
              "1.00 (exponential)"});
  t2.add_row({"p50_s", sim::Table::num(gaps.percentile(50), 1),
              sim::Table::num(30.0 * 0.6931, 1) + " (ln2 * mean)"});
  t2.print();
  return 0;
}
