// E20: the million-node scale path.
//
// The paper's core argument is quantitative at scale: permissionless overlays
// pay for open membership with lookup latency, redundant dissemination
// traffic, and churn-induced failures, and those costs grow with N. E20
// measures the two overlay primitives everything else rides on — Kademlia
// iterative lookups and push-epidemic gossip — at N ∈ {1k, 10k, 100k, 1M}
// under heavy-tailed churn, and doubles as the memory/throughput regression
// gate for the SoA peer-table + streaming-trace work: the whole sweep must
// fit in a few GB (the 1M point in < 4 GB) and the 100k points must finish
// in minutes, not hours. tools/perf_gate.py compares this bench's 100k
// events_per_sec / peak_rss_mb cells against bench/baselines.json in CI.
//
// Sweep shape: for each N, one Kademlia point (hops, lookup latency, RPC
// timeouts over 2000 lookups while peers churn) and one gossip point
// (dissemination time to 99% of final coverage, duplicate factor, for 10
// rumors while peers churn). Kademlia routing tables are warmed via
// observe() — sorted-id neighbors for near buckets plus random contacts for
// far ones — instead of 100k staggered join lookups, which would dominate
// the wall-clock without changing steady-state lookup behavior.
//
// Knobs (repeatable `--param K=V`):
//   max_n=N            drop sweep points above N (CI smoke uses max_n=1000;
//                      the default keeps the 1M point opt-in —
//                      max_n=1000000 enables it)
//   lookups=K          Kademlia lookups per point        (default 2000)
//   rumors=K           gossip broadcasts per point       (default 10)
//   timings_in_json=0  demote wall-clock/events-per-sec/peak-RSS cells to
//                      table-only so BENCH_E20_scale.json is byte-identical
//                      across runs and --jobs values (the determinism CI
//                      check); the default 1 records them in the JSON.
//   min_lat_ms=K       latency floor for SHARDED runs only (default 20).
//                      The floor is the kernel's conservative lookahead, so
//                      it decides the parallel window width; 20 ms clamps
//                      ~0.03% of the 80 ms-median lognormal draws.
//
// Sharded mode (--sim-shards S, S > 1): the point runs on a
// sim::ShardedKernel — hosts spread over S shards, cross-shard messages
// through deterministic mailboxes. Results depend on S (a different, equally
// valid universe than the single-kernel run: per-shard RNG streams, pre-drawn
// lookup initiators) but NEVER on --sim-threads, which is the determinism
// contract CI byte-checks. --sim-shards 1 (the default) is the historical
// single-kernel path, bit-for-bit.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "crypto/hash.hpp"
#include "net/churn.hpp"
#include "net/latency.hpp"
#include "net/network.hpp"
#include "overlay/gossip.hpp"
#include "overlay/kademlia.hpp"
#include "sim/experiment.hpp"
#include "sim/metrics.hpp"
#include "sim/sharding.hpp"
#include "sim/simulator.hpp"

namespace net = decentnet::net;
namespace overlay = decentnet::overlay;
namespace sim = decentnet::sim;
namespace crypto = decentnet::crypto;

namespace bench = decentnet::bench;

namespace {

double percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(p * (v.size() - 1));
  return v[idx];
}

/// Session/downtime mix tuned so a meaningful fraction of the population
/// flaps inside the ~40 s measurement window even at N=1k.
net::ChurnConfig scale_churn() {
  net::ChurnConfig churn;
  churn.session = net::DurationDist::weibull(120, 0.6);
  churn.downtime = net::DurationDist::exponential_mean(60);
  churn.initially_online = 1.0;
  return churn;
}

void run_kademlia_point(std::size_t n, std::size_t lookups, bool json_timings,
                        sim::PointScope& scope) {
  const bench::WallClock wall;
  sim::Simulator simu(scope.seed());
  scope.instrument(simu);
  net::Network netw(simu,
                    std::make_unique<net::LogNormalLatency>(sim::millis(80),
                                                            0.4),
                    net::NetworkConfig{.expected_nodes = n}, &scope.metrics());
  if (sim::Telemetry* const tel = scope.telemetry()) {
    netw.register_telemetry(*tel);
  }

  overlay::KademliaConfig kcfg;
  // Bucket refreshes would add an O(N·buckets) lookup storm mid-window;
  // churn already exercises table repair, so push refreshes out of frame.
  kcfg.refresh_interval = sim::hours(6);

  std::vector<net::NodeId> addrs(n);
  for (std::size_t i = 0; i < n; ++i) addrs[i] = netw.new_node_id();
  std::vector<std::unique_ptr<overlay::KademliaNode>> nodes;
  nodes.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    nodes.push_back(
        std::make_unique<overlay::KademliaNode>(netw, addrs[i], kcfg));
  }

  // Warm routing tables without N join lookups: every node learns its
  // neighbors in sorted-id order (sorted adjacency = long shared prefixes =
  // the near buckets iterative lookups terminate through) plus a spread of
  // random contacts for the far buckets.
  std::vector<std::size_t> by_id(n);
  for (std::size_t i = 0; i < n; ++i) by_id[i] = i;
  std::sort(by_id.begin(), by_id.end(), [&](std::size_t a, std::size_t b) {
    return nodes[a]->id() < nodes[b]->id();
  });
  sim::Rng rng(scope.seed() ^ 0xE20);
  const std::size_t kNeighbors = 8;   // each side, in sorted-id order
  const std::size_t kRandom = 16;
  for (std::size_t pos = 0; pos < n; ++pos) {
    const std::size_t i = by_id[pos];
    nodes[i]->join({});
    for (std::size_t d = 1; d <= kNeighbors; ++d) {
      const std::size_t lo = by_id[(pos + n - d) % n];
      const std::size_t hi = by_id[(pos + d) % n];
      nodes[i]->observe({nodes[lo]->id(), addrs[lo]});
      nodes[i]->observe({nodes[hi]->id(), addrs[hi]});
    }
    for (std::size_t r = 0; r < kRandom; ++r) {
      const std::size_t j = rng.uniform_int(n);
      if (j != i) nodes[i]->observe({nodes[j]->id(), addrs[j]});
    }
  }

  // Churn: rejoining peers bootstrap through a surviving sorted-id neighbor
  // (their table persists across the offline gap, as in real clients).
  net::ChurnDriver churn(
      simu, n, scale_churn(),
      [&](std::size_t i) {
        if (nodes[i]->online()) return;
        nodes[i]->join(nodes[i]->routing_table().empty()
                           ? std::vector<overlay::Contact>{}
                           : std::vector<overlay::Contact>{
                                 nodes[i]->routing_table().front()});
      },
      [&](std::size_t i) {
        if (nodes[i]->online()) nodes[i]->leave();
      });
  churn.start();

  std::vector<overlay::LookupResult> results;
  results.reserve(lookups);
  std::size_t skipped_offline = 0;
  for (std::size_t q = 0; q < lookups; ++q) {
    const auto at = sim::seconds(5) + sim::millis(15) * q;
    simu.post(at, [&, q] {
      const std::size_t who = rng.uniform_int(n);
      if (!nodes[who]->online()) {
        ++skipped_offline;
        return;
      }
      const overlay::Key target =
          crypto::sha256("e20-target-" + std::to_string(q));
      nodes[who]->lookup(target, [&](overlay::LookupResult r) {
        results.push_back(std::move(r));
      });
    });
  }
  const auto horizon =
      sim::seconds(10) + sim::millis(15) * lookups + sim::seconds(5);
  simu.run_until(horizon);
  churn.stop();

  double hops_sum = 0, rpcs_sum = 0;
  std::size_t timeouts = 0, successes = 0;
  std::vector<double> latencies_ms;
  latencies_ms.reserve(results.size());
  for (const auto& r : results) {
    hops_sum += static_cast<double>(r.hops);
    rpcs_sum += static_cast<double>(r.rpcs_sent);
    timeouts += r.timeouts;
    if (!r.closest.empty()) ++successes;
    latencies_ms.push_back(sim::to_millis(r.elapsed));
  }
  const double completed = std::max<double>(1, results.size());
  const auto events = simu.total_events_processed();
  std::vector<std::pair<std::string, sim::Value>> row{
      {"overlay", "kademlia"},
      {"n", static_cast<std::uint64_t>(n)},
      {"online_end", static_cast<std::uint64_t>(churn.online_count())},
      {"lookups", static_cast<std::uint64_t>(results.size())},
      {"skipped_offline", static_cast<std::uint64_t>(skipped_offline)},
      {"success_pct", sim::Value(100.0 * successes / completed, 2)},
      {"mean_hops", sim::Value(hops_sum / completed, 2)},
      {"p50_ms", sim::Value(percentile(latencies_ms, 0.50), 1)},
      {"p99_ms", sim::Value(percentile(latencies_ms, 0.99), 1)},
      {"mean_rpcs", sim::Value(rpcs_sum / completed, 1)},
      {"rpc_timeouts", static_cast<std::uint64_t>(timeouts)},
      {"msgs", netw.messages_sent()},
      {"events", events},
  };
  bench::append_timing_cells(row, wall, events, json_timings);
  scope.add_row(std::move(row));
}

void run_gossip_point(std::size_t n, std::size_t rumors, bool json_timings,
                      sim::PointScope& scope) {
  const bench::WallClock wall;
  sim::Simulator simu(scope.seed());
  scope.instrument(simu);
  net::Network netw(simu,
                    std::make_unique<net::LogNormalLatency>(sim::millis(80),
                                                            0.4),
                    net::NetworkConfig{.expected_nodes = n}, &scope.metrics());
  if (sim::Telemetry* const tel = scope.telemetry()) {
    netw.register_telemetry(*tel);
  }

  overlay::GossipConfig gcfg;
  gcfg.view_size = 16;
  gcfg.shuffle_size = 8;
  gcfg.shuffle_interval = sim::seconds(30);
  gcfg.fanout = 6;
  gcfg.message_bytes = 256;

  std::vector<net::NodeId> addrs(n);
  for (std::size_t i = 0; i < n; ++i) addrs[i] = netw.new_node_id();
  std::vector<std::unique_ptr<overlay::GossipNode>> nodes;
  nodes.reserve(n);
  // First delivery times per rumor, in sim time, for the t99 computation.
  std::vector<std::vector<sim::SimTime>> deliveries(rumors);
  for (std::size_t i = 0; i < n; ++i) {
    nodes.push_back(std::make_unique<overlay::GossipNode>(netw, addrs[i], gcfg));
    nodes.back()->set_deliver_hook(
        [&deliveries, &simu](overlay::RumorId rumor, std::size_t) {
          deliveries[rumor].push_back(simu.now());
        });
  }

  // Half-ring, half-random views: the ring guarantees connectivity, the
  // random links keep the epidemic's diameter logarithmic.
  sim::Rng rng(scope.seed() ^ 0xE20);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<net::NodeId> view;
    view.reserve(gcfg.view_size);
    for (std::size_t d = 1; d <= gcfg.view_size / 2; ++d) {
      view.push_back(addrs[(i + d) % n]);
    }
    while (view.size() < gcfg.view_size) {
      const std::size_t j = rng.uniform_int(n);
      if (j != i) view.push_back(addrs[j]);
    }
    nodes[i]->join(view);
  }

  // Node 0 originates every rumor, so keep it out of the churn population.
  net::ChurnDriver churn(
      simu, n - 1, scale_churn(),
      [&](std::size_t i) {
        if (nodes[i + 1]->online()) return;
        std::vector<net::NodeId> view;
        for (std::size_t d = 1; d <= gcfg.view_size / 2; ++d) {
          view.push_back(addrs[(i + 1 + d) % n]);
        }
        nodes[i + 1]->join(view);
      },
      [&](std::size_t i) {
        if (nodes[i + 1]->online()) nodes[i + 1]->leave();
      });
  churn.start();

  std::vector<sim::SimTime> sent_at(rumors);
  for (std::size_t r = 0; r < rumors; ++r) {
    const auto at = sim::seconds(2) + sim::seconds(3) * r;
    simu.post(at, [&, r] {
      sent_at[r] = simu.now();
      nodes[0]->broadcast(static_cast<overlay::RumorId>(r),
                          gcfg.message_bytes);
    });
  }
  simu.run_until(sim::seconds(2) + sim::seconds(3) * rumors +
                 sim::seconds(20));
  churn.stop();

  double coverage_sum = 0, t99_sum = 0;
  for (std::size_t r = 0; r < rumors; ++r) {
    auto& times = deliveries[r];
    coverage_sum += static_cast<double>(times.size()) / n;
    if (!times.empty()) {
      std::sort(times.begin(), times.end());
      const auto idx = static_cast<std::size_t>(0.99 * (times.size() - 1));
      t99_sum += sim::to_millis(times[idx] - sent_at[r]);
    }
  }
  std::uint64_t duplicates = 0, delivered = 0;
  for (std::size_t r = 0; r < rumors; ++r) delivered += deliveries[r].size();
  for (const auto& node : nodes) duplicates += node->duplicates_received();

  const auto events = simu.total_events_processed();
  std::vector<std::pair<std::string, sim::Value>> row{
      {"overlay", "gossip"},
      {"n", static_cast<std::uint64_t>(n)},
      {"online_end", static_cast<std::uint64_t>(churn.online_count() + 1)},
      {"rumors", static_cast<std::uint64_t>(rumors)},
      {"coverage_pct", sim::Value(100.0 * coverage_sum / rumors, 2)},
      {"t99_ms", sim::Value(t99_sum / rumors, 1)},
      {"dupes_per_delivery",
       sim::Value(static_cast<double>(duplicates) / std::max<std::uint64_t>(
                                                        1, delivered),
                  2)},
      {"msgs", netw.messages_sent()},
      {"events", events},
  };
  bench::append_timing_cells(row, wall, events, json_timings);
  scope.add_row(std::move(row));
}

/// Everything the two sharded points share: kernel + sharded network +
/// registered population. The latency floor (`min_lat`) doubles as the
/// kernel's lookahead window.
struct ShardedNet {
  sim::ShardedKernel kernel;
  net::Network netw;
  std::vector<net::NodeId> addrs;

  ShardedNet(std::size_t n, std::size_t shards, sim::SimDuration min_lat,
             sim::PointScope& scope)
      : kernel(scope.seed(), shards),
        netw(kernel.shard(0),
             std::make_unique<net::LogNormalLatency>(sim::millis(80), 0.4,
                                                     min_lat),
             net::NetworkConfig{.expected_nodes = n}, &scope.metrics()),
        addrs(n) {
    scope.instrument(kernel);
    netw.enable_sharding(kernel);
    if (sim::Telemetry* const tel = scope.telemetry()) {
      netw.register_telemetry(*tel);
    }
    for (std::size_t i = 0; i < n; ++i) addrs[i] = netw.new_node_id();
    // The peer table is find-only during parallel windows, so the whole
    // population registers before the first event.
    for (std::size_t i = 0; i < n; ++i) netw.register_node(addrs[i]);
  }

  std::size_t shard_of(std::size_t i) const {
    return kernel.shard_of(addrs[i].value) % kernel.shard_count();
  }
};

void run_kademlia_point_sharded(std::size_t n, std::size_t lookups,
                                bool json_timings, std::size_t shards,
                                std::size_t threads, sim::SimDuration min_lat,
                                sim::PointScope& scope) {
  const bench::WallClock wall;
  ShardedNet net(n, shards, min_lat, scope);
  sim::ShardedKernel& kernel = net.kernel;
  net::Network& netw = net.netw;
  std::vector<net::NodeId>& addrs = net.addrs;

  overlay::KademliaConfig kcfg;
  kcfg.refresh_interval = sim::hours(6);

  // Result buffers, one per initiator shard (single writer each; merged in
  // shard order after the run). Declared before the nodes: ~KademliaNode
  // fails any still-pending lookup, and that callback writes here.
  std::vector<std::vector<overlay::LookupResult>> results(shards);
  std::vector<std::size_t> skipped(shards, 0);

  std::vector<std::unique_ptr<overlay::KademliaNode>> nodes;
  nodes.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    nodes.push_back(
        std::make_unique<overlay::KademliaNode>(netw, addrs[i], kcfg));
  }

  // Same warm-up as the single-kernel point (driver thread, before any
  // window runs).
  std::vector<std::size_t> by_id(n);
  for (std::size_t i = 0; i < n; ++i) by_id[i] = i;
  std::sort(by_id.begin(), by_id.end(), [&](std::size_t a, std::size_t b) {
    return nodes[a]->id() < nodes[b]->id();
  });
  sim::Rng rng(scope.seed() ^ 0xE20);
  const std::size_t kNeighbors = 8;
  const std::size_t kRandom = 16;
  for (std::size_t pos = 0; pos < n; ++pos) {
    const std::size_t i = by_id[pos];
    nodes[i]->join({});
    for (std::size_t d = 1; d <= kNeighbors; ++d) {
      const std::size_t lo = by_id[(pos + n - d) % n];
      const std::size_t hi = by_id[(pos + d) % n];
      nodes[i]->observe({nodes[lo]->id(), addrs[lo]});
      nodes[i]->observe({nodes[hi]->id(), addrs[hi]});
    }
    for (std::size_t r = 0; r < kRandom; ++r) {
      const std::size_t j = rng.uniform_int(n);
      if (j != i) nodes[i]->observe({nodes[j]->id(), addrs[j]});
    }
  }

  net::ChurnDriver churn(
      kernel.shard(0), n, scale_churn(),
      [&](std::size_t i) {
        if (nodes[i]->online()) return;
        nodes[i]->join(nodes[i]->routing_table().empty()
                           ? std::vector<overlay::Contact>{}
                           : std::vector<overlay::Contact>{
                                 nodes[i]->routing_table().front()});
      },
      [&](std::size_t i) {
        if (nodes[i]->online()) nodes[i]->leave();
      });
  // Each peer's transitions execute on the shard that owns its node.
  churn.set_shard_router([&](std::size_t i) -> sim::Simulator& {
    return netw.simulator_for(addrs[i]);
  });
  churn.start();

  // Initiators are pre-drawn (the single-kernel point draws at event time
  // from a stream shared across all lookups, which would be shard-order
  // dependent).
  for (std::size_t q = 0; q < lookups; ++q) {
    const std::size_t who = rng.uniform_int(n);
    const std::size_t sh = net.shard_of(who);
    const auto at = sim::seconds(5) + sim::millis(15) * q;
    netw.simulator_for(addrs[who]).post(at, [&, q, who, sh] {
      if (!nodes[who]->online()) {
        ++skipped[sh];
        return;
      }
      const overlay::Key target =
          crypto::sha256("e20-target-" + std::to_string(q));
      nodes[who]->lookup(target, [&results, sh](overlay::LookupResult r) {
        results[sh].push_back(std::move(r));
      });
    });
  }
  const auto horizon =
      sim::seconds(10) + sim::millis(15) * lookups + sim::seconds(5);
  kernel.run_until(horizon, threads);
  churn.stop();
  kernel.merge_metrics_into(scope.metrics());

  double hops_sum = 0, rpcs_sum = 0;
  std::size_t timeouts = 0, successes = 0, completed_n = 0, skipped_offline = 0;
  std::vector<double> latencies_ms;
  for (std::size_t sh = 0; sh < shards; ++sh) {
    skipped_offline += skipped[sh];
    for (const auto& r : results[sh]) {
      ++completed_n;
      hops_sum += static_cast<double>(r.hops);
      rpcs_sum += static_cast<double>(r.rpcs_sent);
      timeouts += r.timeouts;
      if (!r.closest.empty()) ++successes;
      latencies_ms.push_back(sim::to_millis(r.elapsed));
    }
  }
  const double completed = std::max<double>(1, completed_n);
  const auto events = kernel.total_events_processed();
  std::vector<std::pair<std::string, sim::Value>> row{
      {"overlay", "kademlia"},
      {"n", static_cast<std::uint64_t>(n)},
      {"shards", static_cast<std::uint64_t>(shards)},
      {"online_end", static_cast<std::uint64_t>(churn.online_count())},
      {"lookups", static_cast<std::uint64_t>(completed_n)},
      {"skipped_offline", static_cast<std::uint64_t>(skipped_offline)},
      {"success_pct", sim::Value(100.0 * successes / completed, 2)},
      {"mean_hops", sim::Value(hops_sum / completed, 2)},
      {"p50_ms", sim::Value(percentile(latencies_ms, 0.50), 1)},
      {"p99_ms", sim::Value(percentile(latencies_ms, 0.99), 1)},
      {"mean_rpcs", sim::Value(rpcs_sum / completed, 1)},
      {"rpc_timeouts", static_cast<std::uint64_t>(timeouts)},
      {"msgs", netw.messages_sent()},
      {"events", events},
      {"windows", kernel.windows_run()},
  };
  bench::append_timing_cells(row, wall, events, json_timings);
  scope.add_row(std::move(row));
}

void run_gossip_point_sharded(std::size_t n, std::size_t rumors,
                              bool json_timings, std::size_t shards,
                              std::size_t threads, sim::SimDuration min_lat,
                              sim::PointScope& scope) {
  const bench::WallClock wall;
  ShardedNet net(n, shards, min_lat, scope);
  sim::ShardedKernel& kernel = net.kernel;
  net::Network& netw = net.netw;
  std::vector<net::NodeId>& addrs = net.addrs;

  overlay::GossipConfig gcfg;
  gcfg.view_size = 16;
  gcfg.shuffle_size = 8;
  gcfg.shuffle_interval = sim::seconds(30);
  gcfg.fanout = 6;
  gcfg.message_bytes = 256;

  // Delivery times bucketed by the receiving node's shard (single writer
  // each), merged in shard order for the t99 computation. Declared before
  // the nodes so the deliver hooks never outlive their buffer.
  std::vector<std::vector<std::vector<sim::SimTime>>> deliv(
      shards, std::vector<std::vector<sim::SimTime>>(rumors));
  std::vector<std::unique_ptr<overlay::GossipNode>> nodes;
  nodes.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    nodes.push_back(
        std::make_unique<overlay::GossipNode>(netw, addrs[i], gcfg));
    const std::size_t sh = net.shard_of(i);
    sim::Simulator* nsim = &netw.simulator_for(addrs[i]);
    nodes.back()->set_deliver_hook(
        [&deliv, sh, nsim](overlay::RumorId rumor, std::size_t) {
          deliv[sh][rumor].push_back(nsim->now());
        });
  }

  sim::Rng rng(scope.seed() ^ 0xE20);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<net::NodeId> view;
    view.reserve(gcfg.view_size);
    for (std::size_t d = 1; d <= gcfg.view_size / 2; ++d) {
      view.push_back(addrs[(i + d) % n]);
    }
    while (view.size() < gcfg.view_size) {
      const std::size_t j = rng.uniform_int(n);
      if (j != i) view.push_back(addrs[j]);
    }
    nodes[i]->join(view);
  }

  net::ChurnDriver churn(
      kernel.shard(0), n - 1, scale_churn(),
      [&](std::size_t i) {
        if (nodes[i + 1]->online()) return;
        std::vector<net::NodeId> view;
        for (std::size_t d = 1; d <= gcfg.view_size / 2; ++d) {
          view.push_back(addrs[(i + 1 + d) % n]);
        }
        nodes[i + 1]->join(view);
      },
      [&](std::size_t i) {
        if (nodes[i + 1]->online()) nodes[i + 1]->leave();
      });
  churn.set_shard_router([&](std::size_t i) -> sim::Simulator& {
    return netw.simulator_for(addrs[i + 1]);
  });
  churn.start();

  // Node 0 originates every rumor on its own shard; sent_at is written only
  // by that shard's worker.
  sim::Simulator& origin_sim = netw.simulator_for(addrs[0]);
  std::vector<sim::SimTime> sent_at(rumors);
  for (std::size_t r = 0; r < rumors; ++r) {
    const auto at = sim::seconds(2) + sim::seconds(3) * r;
    origin_sim.post(at, [&, r] {
      sent_at[r] = origin_sim.now();
      nodes[0]->broadcast(static_cast<overlay::RumorId>(r),
                          gcfg.message_bytes);
    });
  }
  kernel.run_until(sim::seconds(2) + sim::seconds(3) * rumors +
                       sim::seconds(20),
                   threads);
  churn.stop();
  kernel.merge_metrics_into(scope.metrics());

  double coverage_sum = 0, t99_sum = 0;
  for (std::size_t r = 0; r < rumors; ++r) {
    std::vector<sim::SimTime> times;
    for (std::size_t sh = 0; sh < shards; ++sh) {
      times.insert(times.end(), deliv[sh][r].begin(), deliv[sh][r].end());
    }
    coverage_sum += static_cast<double>(times.size()) / n;
    if (!times.empty()) {
      std::sort(times.begin(), times.end());
      const auto idx = static_cast<std::size_t>(0.99 * (times.size() - 1));
      t99_sum += sim::to_millis(times[idx] - sent_at[r]);
    }
  }
  std::uint64_t duplicates = 0, delivered = 0;
  for (std::size_t sh = 0; sh < shards; ++sh) {
    for (std::size_t r = 0; r < rumors; ++r) delivered += deliv[sh][r].size();
  }
  for (const auto& node : nodes) duplicates += node->duplicates_received();

  const auto events = kernel.total_events_processed();
  std::vector<std::pair<std::string, sim::Value>> row{
      {"overlay", "gossip"},
      {"n", static_cast<std::uint64_t>(n)},
      {"shards", static_cast<std::uint64_t>(shards)},
      {"online_end", static_cast<std::uint64_t>(churn.online_count() + 1)},
      {"rumors", static_cast<std::uint64_t>(rumors)},
      {"coverage_pct", sim::Value(100.0 * coverage_sum / rumors, 2)},
      {"t99_ms", sim::Value(t99_sum / rumors, 1)},
      {"dupes_per_delivery",
       sim::Value(static_cast<double>(duplicates) / std::max<std::uint64_t>(
                                                        1, delivered),
                  2)},
      {"msgs", netw.messages_sent()},
      {"events", events},
      {"windows", kernel.windows_run()},
  };
  bench::append_timing_cells(row, wall, events, json_timings);
  scope.add_row(std::move(row));
}

}  // namespace

int main(int argc, char** argv) {
  sim::ExperimentHarness ex("E20_scale", argc, argv, {.seed = 20, .shard_aware = true});
  ex.describe(
      "E20: overlay primitives at 1k/10k/100k/1M nodes under churn",
      "Open-membership overlays pay for decentralization with multi-hop "
      "lookups, redundant dissemination and churn-induced timeouts, and the "
      "costs grow with N (paper SS II-III)",
      "Per N in {1k,10k,100k,1M (opt-in via max_n)}: 2000 Kademlia lookups "
      "and 10 gossip broadcasts while peers churn (Weibull sessions, exp "
      "downtime); reports hops/latency/coverage plus events/sec and peak "
      "RSS");

  const std::uint64_t max_n = ex.cli_param_u64("max_n", 100000);
  const std::size_t lookups =
      static_cast<std::size_t>(ex.cli_param_u64("lookups", 2000));
  const std::size_t rumors =
      static_cast<std::size_t>(ex.cli_param_u64("rumors", 10));
  const bool json_timings = ex.cli_param_u64("timings_in_json", 1) != 0;
  const std::size_t shards = ex.sim_shards();
  const std::size_t threads = ex.sim_threads();
  const auto min_lat = sim::millis(
      static_cast<std::int64_t>(ex.cli_param_u64("min_lat_ms", 20)));

  // The 1M point is opt-in (max_n=1000000): it needs ~3 GB and minutes of
  // wall-clock, which would dominate every default run of the sweep.
  std::vector<std::size_t> sizes;
  for (const std::size_t n : {1000u, 10000u, 100000u, 1000000u}) {
    if (n <= max_n) sizes.push_back(n);
  }
  if (sizes.empty()) sizes.push_back(static_cast<std::size_t>(max_n));

  ex.set_param("max_n", max_n);
  ex.set_param("lookups", static_cast<std::uint64_t>(lookups));
  ex.set_param("rumors", static_cast<std::uint64_t>(rumors));
  if (shards > 1) {
    // Results depend on the decomposition, so it is a recorded parameter.
    // --sim-threads deliberately is not: artifacts are byte-identical at
    // any thread count.
    ex.set_param("sim_shards", static_cast<std::uint64_t>(shards));
    ex.set_param("min_lat_ms",
                 static_cast<std::uint64_t>(sim::to_millis(min_lat)));
  }

  ex.run_points(sizes.size() * 2, [&](sim::PointScope& scope) {
    const std::size_t n = sizes[scope.index() / 2];
    if (scope.index() % 2 == 0) {
      if (shards > 1) {
        run_kademlia_point_sharded(n, lookups, json_timings, shards, threads,
                                   min_lat, scope);
      } else {
        run_kademlia_point(n, lookups, json_timings, scope);
      }
    } else {
      if (shards > 1) {
        run_gossip_point_sharded(n, rumors, json_timings, shards, threads,
                                 min_lat, scope);
      } else {
        run_gossip_point(n, rumors, json_timings, scope);
      }
    }
  });

  std::printf(
      "\nScale path: one Shared<T> allocation per rumor/request regardless "
      "of fan-out;\nSoA peer arrays + dense node indices + sparse routing "
      "tables keep the 1M point\nunder 4 GB (use --stream-trace for traced "
      "runs at this scale).\n");
  return ex.finish();
}
