// E8 — Energy consumption (§III-B).
// "The Bitcoin energy consumption peaked at 70TWh in 2018, which is roughly
// what a country like Austria consumes."
#include "bench_util.hpp"
#include "chain/economics.hpp"

using namespace decentnet;

int main(int argc, char** argv) {
  bench::ExperimentHarness ex("E8_energy", argc, argv);
  ex.describe(
      "E8: proof-of-work energy equilibrium vs coin price",
      "mining spend tracks the coin price (~70 TWh/yr at the 2018 peak, "
      "'roughly what Austria consumes') and is untethered from useful "
      "throughput",
      "free-entry equilibrium: hash power grows until electricity consumes "
      "the configured fraction of block revenue; price swept over the "
      "2013-2018 range, throughput held at protocol constants");

  chain::EnergyParams base;
  base.block_reward_coins = 12.5;
  base.blocks_per_day = 144;
  base.joules_per_hash = 50e-12;
  base.electricity_usd_per_kwh = 0.05;
  base.electricity_revenue_fraction = 0.7;

  const double tx_per_day = chain::daily_tx_capacity(144, 1'000'000, 250);

  for (const double price : {13.0, 100.0, 770.0, 4000.0, 8000.0, 19783.0}) {
    chain::EnergyParams p = base;
    p.coin_price_usd = price;
    const double h = chain::equilibrium_hashrate(p);
    const double twh = chain::annual_energy_twh(h, p.joules_per_hash);
    const double kwh_per_tx =
        twh * 1e9 / 365.0 / tx_per_day;  // TWh/yr -> kWh/day basis
    ex.add_row({{"price_usd", bench::Value(price, 0)},
                {"hashrate_EH_s", bench::Value(h / 1e18, 3)},
                {"energy_TWh_yr", bench::Value(twh, 1)},
                {"tx_per_day", bench::Value(tx_per_day, 0)},
                {"kWh_per_tx", bench::Value(kwh_per_tx, 1)}});
  }
  const int rc = ex.finish();

  std::printf(
      "\nThroughput never moves (still ~%.0f tx/day) while energy scales\n"
      "with price: at the Dec-2017 peak the model lands in the tens-of-TWh\n"
      "band the Economist reported. A partitioned cloud backend serving\n"
      "VISA-scale traffic (~2e9 tx/day) runs on ~one datacenter (~0.1 TWh/yr),\n"
      "five orders of magnitude less per transaction.\n",
      tx_per_day);
  return rc;
}
