// E2 — Free riding and incentives (§II-B Problem 1).
// "Users do not donate their computing, storage and bandwidth resources for
// altruist reasons ... free riding was extensively reported in the Gnutella
// overlay [70% shared nothing]. BitTorrent mitigated the free riding problem
// by designing the protocol including incentives (tit-for-tat) ... but
// collaboration is only enforced during the download process."
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "net/network.hpp"
#include "net/topology.hpp"
#include "overlay/flood.hpp"
#include "p2p/bittorrent.hpp"
#include "p2p/workload.hpp"
#include "sim/metrics.hpp"

using namespace decentnet;

namespace {

struct GnutellaRow {
  double success;
  double msgs_per_query;
  double mean_hops;
};

GnutellaRow run_gnutella(double free_rider_fraction, std::uint64_t seed,
                         sim::ExperimentHarness& ex) {
  sim::Simulator simu(seed);
  ex.instrument(simu);
  const std::size_t n = 400;
  net::Network netw(
      simu, std::make_unique<net::LogNormalLatency>(sim::millis(60), 0.4),
      net::NetworkConfig{.expected_nodes = n}, &ex.metrics());
  sim::Rng rng(seed ^ 0x62);
  p2p::ContentCatalog catalog({}, rng);
  const auto plan = p2p::plan_population(catalog, n, free_rider_fraction, rng);

  const auto adj = net::random_graph(n, 4, rng);
  std::vector<net::NodeId> addrs;
  for (std::size_t i = 0; i < n; ++i) addrs.push_back(netw.new_node_id());
  std::vector<std::unique_ptr<overlay::GnutellaNode>> nodes;
  for (std::size_t i = 0; i < n; ++i) {
    nodes.push_back(std::make_unique<overlay::GnutellaNode>(
        netw, addrs[i], overlay::FloodConfig{}));
    std::vector<net::NodeId> nbrs;
    for (std::size_t j : adj[i]) nbrs.push_back(addrs[j]);
    nodes.back()->join(std::move(nbrs));
    for (overlay::ContentId item : plan.shared[i]) {
      nodes.back()->add_content(item);
    }
  }
  const int kQueries = 200;
  int hits = 0;
  sim::Histogram hops;
  const auto msgs_before = netw.messages_sent();
  for (int q = 0; q < kQueries; ++q) {
    auto& src = *nodes[rng.uniform_int(n)];
    bool done = false;
    src.query(catalog.sample_query(rng), [&](overlay::QueryOutcome out) {
      done = true;
      if (out.found) {
        ++hits;
        hops.record(static_cast<double>(out.hops));
      }
    });
    simu.run_until(simu.now() + sim::seconds(25));
    (void)done;
  }
  GnutellaRow row;
  row.success = static_cast<double>(hits) / kQueries;
  row.msgs_per_query =
      static_cast<double>(netw.messages_sent() - msgs_before) / kQueries;
  row.mean_hops = hops.mean();
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bench::ExperimentHarness ex("E2_free_riding", argc, argv, {.seed = 5});
  ex.describe(
      "E2: free riding in open file-sharing networks",
      "most Gnutella peers shared nothing, degrading search for everyone; "
      "BitTorrent's tit-for-tat punishes riders during a download but "
      "nothing sustains the infrastructure between downloads",
      "(a) 400-node Gnutella flood search vs free-rider fraction; (b) one "
      "BitTorrent swarm with/without tit-for-tat, contributor vs rider "
      "completion");

  for (const double fr : {0.0, 0.25, 0.50, 0.66, 0.80, 0.90}) {
    const auto r = run_gnutella(fr, ex.seed(), ex);
    ex.add_row({{"scenario", "gnutella"},
                {"free_riders_pct", bench::Value(fr * 100, 0)},
                {"success_rate", bench::Value(r.success, 3)},
                {"msgs_per_query", bench::Value(r.msgs_per_query, 0)},
                {"mean_hops_to_hit", bench::Value(r.mean_hops, 1)}});
  }

  for (const bool tft : {true, false}) {
    sim::Simulator simu(ex.seed() ^ 2);
    ex.instrument(simu);
    p2p::SwarmConfig cfg;
    cfg.pieces = 64;
    cfg.piece_bytes = 64 * 1024;
    cfg.tit_for_tat = tft;
    cfg.seed_upload_bps = 1e6 / 8;
    cfg.peer_upload_bps = 2e6 / 8;
    p2p::Swarm swarm(simu, cfg, 1, 16, 4);
    swarm.start();
    simu.run_until(sim::hours(2));
    const double contrib = sim::to_seconds(swarm.median_finish_time(false));
    const double rider = sim::to_seconds(swarm.median_finish_time(true));
    ex.add_row(
        {{"scenario", "bittorrent"},
         {"choking", tft ? "tit-for-tat" : "random (no incentives)"},
         {"contrib_median_s", bench::Value(contrib, 1)},
         {"rider_median_s", bench::Value(rider, 1)},
         {"rider_penalty_x",
          contrib > 0 ? bench::Value(rider / contrib, 2) : bench::Value()}});
  }
  const int rc = ex.finish();
  std::printf(
      "\nGnutella search quality collapses with the sharing base; under\n"
      "tit-for-tat riders pay a completion-time penalty that vanishes with\n"
      "random unchoking. Neither mechanism pays anyone to keep a DHT or\n"
      "relay infrastructure alive between downloads — the gap the paper says\n"
      "cryptocurrency incentives tried (and failed) to fill for services.\n");
  return rc;
}
