// E14 — Double-spend safety vs confirmations (§III-A immutability argument).
// "Modifying the content of a block requires re-computing the proof-of-work
// for that block and for any block that follows ... a feat possible only if
// the attacker possesses more than half of the computing power."
#include "bench_util.hpp"
#include "chain/attacks.hpp"
#include "sim/rng.hpp"

using namespace decentnet;

int main(int argc, char** argv) {
  bench::ExperimentHarness ex("E14_doublespend", argc, argv, {.seed = 1000});
  ex.describe(
      "E14: double-spend success probability vs confirmations",
      "immutability is probabilistic: an attacker with hash share q < 0.5 "
      "succeeds with probability falling geometrically in the number of "
      "confirmations z; q >= 0.5 always succeeds",
      "Nakamoto's closed form plus a 100k-trial Monte-Carlo of the exact "
      "mining race, for q in {5%..50%} and z in {0..10}");

  for (const double q : {0.05, 0.10, 0.20, 0.30, 0.40, 0.50}) {
    for (const unsigned z : {0u, 1u, 2u, 4u, 6u, 10u}) {
      sim::Rng rng(ex.seed() + static_cast<std::uint64_t>(q * 100) + z);
      const double an = chain::doublespend_success_probability(q, z);
      const double mc = chain::doublespend_success_mc(q, z, 100'000, 300, rng);
      ex.add_row({{"kind", "success_probability"},
                  {"q", bench::Value(q, 2)},
                  {"z", std::uint64_t{z}},
                  {"analytic", bench::Value(an, 4)},
                  {"monte_carlo", bench::Value(mc, 4)}});
    }
  }
  for (const double q : {0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40}) {
    unsigned z = 0;
    while (z < 400 && chain::doublespend_success_probability(q, z) > 0.001) {
      ++z;
    }
    ex.add_row({{"kind", "confirmations_for_p<0.001"},
                {"q", bench::Value(q, 2)},
                {"z", std::uint64_t{z}},
                {"analytic",
                 z >= 400 ? bench::Value(">400") : bench::Value()}});
  }
  return ex.finish();
}
