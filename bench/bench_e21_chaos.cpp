// E21 — Deterministic chaos sweep across all protocol families (robustness).
// Where E19 scripts one hand-written fault per family, E21 samples whole
// fault plans from a declarative ChaosSpace — partitions composed with
// crashes, loss bursts, duplication, reordering and latency spikes — and
// judges every run with the safety invariants plus liveness oracles: Raft
// re-elects and recommits, PBFT resumes executing, Kademlia lookups succeed
// again (under churn), gossip coverage converges, chain tips re-converge.
// Every (protocol, seed) verdict is deterministic; a failing seed is shrunk
// to a minimal repro plan and written as a ChaosRepro JSON file that
// `--repro FILE` replays byte-identically.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "bft/pbft.hpp"
#include "bft/raft.hpp"
#include "chain/miner.hpp"
#include "chain/node.hpp"
#include "chain/wallet.hpp"
#include "net/churn.hpp"
#include "net/faults.hpp"
#include "net/network.hpp"
#include "net/topology.hpp"
#include "overlay/gossip.hpp"
#include "overlay/kademlia.hpp"
#include "sim/telemetry.hpp"
#include "sim/chaos.hpp"
#include "sim/invariants.hpp"

using namespace decentnet;

namespace {

// --telemetry wiring for the single-run --repro replay: main() points this
// at the harness Telemetry before invoking the scenario, and every runner
// attaches its fresh Simulator and registers the network + fault series.
// Fuzz sweeps leave it null (hundreds of shrink replays would interleave).
sim::Telemetry* g_telemetry = nullptr;

void attach_run_telemetry(sim::Simulator& simu) {
  if (g_telemetry != nullptr) g_telemetry->attach(simu);
}

void register_run_telemetry(net::Network& netw, net::FaultScheduler& faults) {
  if (g_telemetry == nullptr) return;
  netw.register_telemetry(*g_telemetry);
  faults.register_telemetry(*g_telemetry);
}

constexpr const char* kProtocols[] = {"pow", "raft", "pbft", "kademlia",
                                      "gossip"};

// Per-protocol recovery bound: the liveness oracles must be satisfied within
// this budget after the last fault heals.
sim::SimDuration recovery_bound(std::string_view protocol) {
  if (protocol == "pow") return sim::seconds(150);
  if (protocol == "gossip") return sim::seconds(60);
  return sim::seconds(90);
}

std::size_t world_size(std::string_view protocol) {
  if (protocol == "raft") return 5;
  if (protocol == "pbft") return 4;
  if (protocol == "pow") return 12;
  return 24;  // kademlia, gossip
}

// The sampled space: the CLI space (or defaults) with the population pinned
// to the protocol's world size so partition groups and crash indices target
// real nodes.
sim::ChaosSpace space_for(const sim::ChaosSpace& base,
                          std::string_view protocol) {
  sim::ChaosSpace space = base;
  space.nodes = world_size(protocol);
  if (protocol == "pbft") {
    // n = 3f+1 = 4: more than one simultaneous crash exceeds f and stalls
    // the protocol for the whole window by design, not by bug.
    space.crashes.hi = std::min<std::uint32_t>(space.crashes.hi, 1);
  }
  return space;
}

// Record the first violation (safety or liveness) as the outcome.
sim::ChaosOutcome verdict(const sim::InvariantChecker& checker, bool recovered,
                          double recovery_s) {
  sim::ChaosOutcome out;
  if (!checker.ok()) {
    const sim::InvariantViolation& v = checker.violations().front();
    out.ok = false;
    out.violation = v.invariant + ": " + v.detail + " (t=" +
                    std::to_string(v.at) + "us, event " +
                    std::to_string(v.events_processed) + ")";
  }
  if (recovered) out.recovery_s.push_back(recovery_s);
  return out;
}

// --- Raft: 5 nodes, periodic leader-driven proposals. Safety: single
// leader per term + commit-log agreement. Liveness: a post-quiesce command
// commits on a majority within the bound.
sim::ChaosOutcome run_raft(const net::FaultPlan& plan, std::uint64_t seed) {
  sim::Simulator simu(seed);
  attach_run_telemetry(simu);
  const std::size_t n = world_size("raft");
  sim::MetricRegistry metrics;
  net::Network netw(simu,
                    std::make_unique<net::ConstantLatency>(sim::millis(5)),
                    net::NetworkConfig{.expected_nodes = n}, &metrics);
  std::vector<net::NodeId> addrs;
  for (std::size_t i = 0; i < n; ++i) addrs.push_back(netw.new_node_id());

  const sim::SimTime quiesce = sim::plan_quiesce_time(plan);
  const sim::SimTime deadline = quiesce + recovery_bound("raft");

  sim::InvariantChecker checker(simu, &metrics);
  sim::CommitLogInvariant commits("raft-commit-agreement");
  commits.bind(&checker);

  std::map<std::uint64_t, sim::SimTime> proposed_at;
  std::vector<std::uint64_t> post_quiesce_commits(n, 0);
  std::vector<std::unique_ptr<bft::RaftNode>> nodes;
  for (std::size_t i = 0; i < n; ++i) {
    nodes.push_back(std::make_unique<bft::RaftNode>(netw, addrs[i], i,
                                                    bft::RaftConfig{}));
    nodes.back()->set_group(addrs);
    nodes.back()->set_commit_hook(
        [&, i](std::uint64_t seq, const bft::Command& cmd) {
          commits.record(i, seq, cmd.id);
          const auto it = proposed_at.find(cmd.id);
          if (it != proposed_at.end() && it->second >= quiesce) {
            ++post_quiesce_commits[i];
          }
        });
  }
  std::vector<bft::RaftNode*> raw;
  for (auto& nd : nodes) raw.push_back(nd.get());
  checker.add("raft-single-leader",
              sim::invariants::single_leader_per_term(raw));
  const auto majority_recommitted = [&] {
    std::size_t have = 0;
    for (const std::uint64_t c : post_quiesce_commits) have += c > 0;
    return have > n / 2;
  };
  simu.schedule_at(quiesce, [&] {
    checker.add("raft-leader-liveness",
                sim::invariants::leader_elected_by(simu, raw, deadline));
    checker.add("raft-commit-liveness",
                sim::invariants::eventually(simu, "post-quiesce majority commit",
                                            deadline, majority_recommitted));
  });
  checker.start(sim::millis(200));
  for (auto& nd : nodes) nd->start();

  net::FaultTargets targets;
  targets.nodes = addrs;
  targets.crash = [&](std::size_t i) { nodes[i]->crash(); };
  targets.restart = [&](std::size_t i) { nodes[i]->restart(); };
  net::FaultScheduler faults(netw, plan, std::move(targets));
  faults.start();
  register_run_telemetry(netw, faults);

  std::uint64_t next_id = 1;
  simu.schedule_periodic(sim::millis(500), sim::millis(500), [&] {
    for (auto& nd : nodes) {
      if (!nd->is_leader()) continue;
      bft::Command c;
      c.id = next_id;
      c.client = 1;
      c.op = "w";
      if (nd->propose(c)) proposed_at[next_id++] = simu.now();
      break;
    }
  });

  bool recovered = false;
  sim::SimTime recovered_at = 0;
  simu.schedule_periodic(quiesce + sim::millis(100), sim::millis(100), [&] {
    if (!recovered && majority_recommitted()) {
      recovered = true;
      recovered_at = simu.now();
    }
  });
  simu.run_until(deadline + sim::seconds(10));
  checker.check_now();
  checker.stop();
  return verdict(checker, recovered,
                 sim::to_seconds(recovered_at - quiesce));
}

// --- PBFT: f=1 (4 replicas) + one client submitting every 2 s. Safety:
// commit agreement. Liveness: 2f+1 replicas execute a post-quiesce request
// within the bound (view changes + state transfer included).
sim::ChaosOutcome run_pbft(const net::FaultPlan& plan, std::uint64_t seed) {
  sim::Simulator simu(seed);
  attach_run_telemetry(simu);
  bft::PbftConfig cfg;
  cfg.f = 1;
  const std::size_t n = 3 * cfg.f + 1;
  sim::MetricRegistry metrics;
  net::Network netw(simu,
                    std::make_unique<net::ConstantLatency>(sim::millis(5)),
                    net::NetworkConfig{.expected_nodes = n + 1}, &metrics);
  std::vector<net::NodeId> addrs;
  for (std::size_t i = 0; i < n; ++i) addrs.push_back(netw.new_node_id());

  const sim::SimTime quiesce = sim::plan_quiesce_time(plan);
  const sim::SimTime deadline = quiesce + recovery_bound("pbft");

  sim::InvariantChecker checker(simu, &metrics);
  sim::CommitLogInvariant commits("pbft-commit-agreement");
  commits.bind(&checker);

  std::vector<sim::SimTime> submit_times;
  std::vector<std::uint64_t> post_quiesce_exec(n, 0);
  std::vector<std::unique_ptr<bft::PbftReplica>> replicas;
  for (std::size_t i = 0; i < n; ++i) {
    replicas.push_back(
        std::make_unique<bft::PbftReplica>(netw, addrs[i], i, cfg));
    replicas.back()->set_group(addrs);
    replicas.back()->set_commit_hook(
        [&, i](std::uint64_t seq, const bft::Command& cmd) {
          commits.record(i, seq, cmd.id);
          if (cmd.id <= submit_times.size() &&
              submit_times[cmd.id - 1] >= quiesce) {
            ++post_quiesce_exec[i];
          }
        });
  }
  bft::PbftClient client(netw, netw.new_node_id(), 1, cfg);
  client.set_group(addrs);

  const auto quorum_executing = [&] {
    std::size_t have = 0;
    for (const std::uint64_t c : post_quiesce_exec) have += c > 0;
    return have >= 2 * cfg.f + 1;
  };
  simu.schedule_at(quiesce, [&] {
    checker.add("pbft-commit-liveness",
                sim::invariants::eventually(simu,
                                            "post-quiesce quorum execution",
                                            deadline, quorum_executing));
  });
  checker.start(sim::millis(200));

  net::FaultTargets targets;
  targets.nodes = addrs;
  targets.crash = [&](std::size_t i) { replicas[i]->crash(); };
  targets.restart = [&](std::size_t i) { replicas[i]->recover(); };
  net::FaultScheduler faults(netw, plan, std::move(targets));
  faults.start();
  register_run_telemetry(netw, faults);

  simu.schedule_periodic(sim::seconds(1), sim::seconds(2), [&] {
    submit_times.push_back(simu.now());
    client.submit("w");
  });

  bool recovered = false;
  sim::SimTime recovered_at = 0;
  simu.schedule_periodic(quiesce + sim::millis(100), sim::millis(100), [&] {
    if (!recovered && quorum_executing()) {
      recovered = true;
      recovered_at = simu.now();
    }
  });
  simu.run_until(deadline + sim::seconds(10));
  checker.check_now();
  checker.stop();
  return verdict(checker, recovered,
                 sim::to_seconds(recovered_at - quiesce));
}

// --- PoW: 12 nodes / 4 miners on a random graph. Crash = unreachable at
// the network layer. Liveness: tips converge to within 2 blocks after
// quiesce. (No mid-fault safety predicate: forks during a partition are the
// protocol working as designed.)
sim::ChaosOutcome run_pow(const net::FaultPlan& plan, std::uint64_t seed) {
  sim::Simulator simu(seed);
  attach_run_telemetry(simu);
  const std::size_t n = world_size("pow");
  sim::MetricRegistry metrics;
  net::Network netw(simu,
                    std::make_unique<net::ConstantLatency>(sim::millis(50)),
                    net::NetworkConfig{.expected_nodes = n}, &metrics);
  chain::ChainParams params;
  params.target_block_interval = sim::seconds(15);
  params.retarget_window = 0;
  params.initial_difficulty = 1e6;
  chain::Wallet payout = chain::Wallet::from_seed(0xE21);
  const chain::BlockPtr genesis =
      chain::make_genesis(payout.address(), 10000, params.initial_difficulty);

  std::vector<net::NodeId> addrs;
  for (std::size_t i = 0; i < n; ++i) addrs.push_back(netw.new_node_id());
  sim::Rng topo_rng(seed ^ 0x70B0);
  const auto adj = net::random_graph(n, 4, topo_rng);
  std::vector<std::unique_ptr<chain::FullNode>> nodes;
  for (std::size_t i = 0; i < n; ++i) {
    nodes.push_back(
        std::make_unique<chain::FullNode>(netw, addrs[i], params, genesis));
    std::vector<net::NodeId> nbrs;
    for (std::size_t j : adj[i]) nbrs.push_back(addrs[j]);
    nodes.back()->connect(std::move(nbrs));
  }
  const double total_rate =
      params.initial_difficulty / sim::to_seconds(params.target_block_interval);
  std::vector<std::unique_ptr<chain::Miner>> miners;
  for (std::size_t i : {0ul, 3ul, 6ul, 9ul}) {
    miners.push_back(std::make_unique<chain::Miner>(
        *nodes[i], payout.address(), total_rate / 4));
    miners.back()->start();
  }

  const sim::SimTime quiesce = sim::plan_quiesce_time(plan);
  const sim::SimTime deadline = quiesce + recovery_bound("pow");

  sim::InvariantChecker checker(simu, &metrics);
  std::vector<chain::FullNode*> raw;
  for (auto& nd : nodes) raw.push_back(nd.get());
  simu.schedule_at(quiesce, [&] {
    checker.add("pow-tip-liveness",
                sim::invariants::tips_converge_by(simu, raw, 2, deadline));
  });
  checker.start(sim::seconds(1));

  net::FaultTargets targets;
  targets.nodes = addrs;
  targets.crash = [&](std::size_t i) { netw.set_unreachable(addrs[i], true); };
  targets.restart = [&](std::size_t i) {
    netw.set_unreachable(addrs[i], false);
  };
  net::FaultScheduler faults(netw, plan, std::move(targets));
  faults.start();
  register_run_telemetry(netw, faults);

  bool recovered = false;
  sim::SimTime recovered_at = 0;
  simu.schedule_periodic(quiesce + sim::millis(100), sim::millis(100), [&] {
    if (recovered) return;
    std::uint64_t lo = ~0ull, hi = 0;
    for (const auto& nd : nodes) {
      const std::uint64_t h = nd->tree().best_height();
      lo = std::min(lo, h);
      hi = std::max(hi, h);
    }
    if (hi - lo <= 2) {
      recovered = true;
      recovered_at = simu.now();
    }
  });
  simu.run_until(deadline + sim::seconds(10));
  checker.check_now();
  checker.stop();
  for (auto& m : miners) m->stop();
  return verdict(checker, recovered,
                 sim::to_seconds(recovered_at - quiesce));
}

// --- Kademlia: 24 nodes with heavy-tailed churn COMPOSED with the sampled
// fault plan (the FaultScheduler holds a crashed node's churn so churn can
// never revive it early). Workload: stored values republished every 20 s,
// find_value lookups every 2 s. Liveness: 3 post-quiesce lookups succeed
// within the bound.
sim::ChaosOutcome run_kademlia(const net::FaultPlan& plan,
                               std::uint64_t seed) {
  sim::Simulator simu(seed);
  attach_run_telemetry(simu);
  const std::size_t n = world_size("kademlia");
  sim::MetricRegistry metrics;
  net::Network netw(simu,
                    std::make_unique<net::ConstantLatency>(sim::millis(20)),
                    net::NetworkConfig{.expected_nodes = n}, &metrics);
  overlay::KademliaConfig cfg;
  cfg.rpc_retries = 1;  // ride out sampled loss bursts (see README)
  std::vector<net::NodeId> addrs;
  for (std::size_t i = 0; i < n; ++i) addrs.push_back(netw.new_node_id());
  std::vector<std::unique_ptr<overlay::KademliaNode>> nodes;
  for (std::size_t i = 0; i < n; ++i) {
    nodes.push_back(
        std::make_unique<overlay::KademliaNode>(netw, addrs[i], cfg));
  }
  std::vector<overlay::Contact> all_contacts;
  for (const auto& nd : nodes) {
    all_contacts.push_back({nd->id(), nd->addr()});
  }
  const auto bootstrap_for = [&](std::size_t i) {
    std::vector<overlay::Contact> bs;
    for (std::size_t d = 1; d <= 3; ++d) {
      bs.push_back(all_contacts[(i + d) % n]);
    }
    return bs;
  };
  for (std::size_t i = 0; i < n; ++i) nodes[i]->join(bootstrap_for(i));

  const sim::SimTime quiesce = sim::plan_quiesce_time(plan);
  const sim::SimTime deadline = quiesce + recovery_bound("kademlia");

  net::ChurnConfig churn_cfg;
  churn_cfg.session = net::DurationDist::weibull(240, 0.8);
  churn_cfg.downtime = net::DurationDist::exponential_mean(20);
  churn_cfg.initially_online = 1.0;
  net::ChurnDriver churn(
      simu, n, churn_cfg,
      [&](std::size_t i) { nodes[i]->join(bootstrap_for(i)); },
      [&](std::size_t i) { nodes[i]->leave(); });
  churn.start();

  net::FaultTargets targets;
  targets.nodes = addrs;
  targets.crash = [&](std::size_t i) { nodes[i]->leave(); };
  targets.restart = [&](std::size_t i) { nodes[i]->join(bootstrap_for(i)); };
  targets.churn = &churn;
  net::FaultScheduler faults(netw, plan, std::move(targets));
  faults.start();
  register_run_telemetry(netw, faults);

  // Keys stored once the overlay settles and republished every 20 s from the
  // lowest online node (real DHTs republish; churn evicts replicas).
  std::vector<overlay::Key> keys;
  for (std::uint64_t k = 0; k < 8; ++k) {
    keys.push_back(crypto::sha256("chaos-key-" + std::to_string(k)));
  }
  simu.schedule_periodic(sim::seconds(2), sim::seconds(20), [&] {
    for (std::size_t i = 0; i < n; ++i) {
      if (!nodes[i]->online()) continue;
      for (std::size_t k = 0; k < keys.size(); ++k) {
        nodes[i]->store(keys[k], "v" + std::to_string(k));
      }
      break;
    }
  });

  std::uint64_t post_quiesce_hits = 0;
  std::uint64_t issued = 0;
  simu.schedule_periodic(sim::seconds(4), sim::seconds(2), [&] {
    const std::size_t who = issued % n;
    const overlay::Key& key = keys[issued % keys.size()];
    ++issued;
    if (!nodes[who]->online()) return;
    const sim::SimTime at = simu.now();
    nodes[who]->find_value(key, [&, at](overlay::LookupResult res) {
      if (res.found_value && at >= quiesce) ++post_quiesce_hits;
    });
  });

  sim::InvariantChecker checker(simu, &metrics);
  simu.schedule_at(quiesce, [&] {
    checker.add("kademlia-lookup-liveness",
                sim::invariants::count_reaches(
                    simu, "post-quiesce lookup successes",
                    [&] { return post_quiesce_hits; }, 3, deadline));
  });
  checker.start(sim::millis(500));

  bool recovered = false;
  sim::SimTime recovered_at = 0;
  simu.schedule_periodic(quiesce + sim::millis(100), sim::millis(100), [&] {
    if (!recovered && post_quiesce_hits >= 3) {
      recovered = true;
      recovered_at = simu.now();
    }
  });
  simu.run_until(deadline + sim::seconds(10));
  checker.check_now();
  checker.stop();
  churn.stop();
  return verdict(checker, recovered,
                 sim::to_seconds(recovered_at - quiesce));
}

// --- Gossip: 24 nodes, Cyclon shuffling, a rumor broadcast every 5 s
// throughout plus one probe rumor right after quiesce. Liveness: the probe
// rumor reaches every online node within the bound.
sim::ChaosOutcome run_gossip(const net::FaultPlan& plan, std::uint64_t seed) {
  sim::Simulator simu(seed);
  attach_run_telemetry(simu);
  const std::size_t n = world_size("gossip");
  sim::MetricRegistry metrics;
  net::Network netw(simu,
                    std::make_unique<net::ConstantLatency>(sim::millis(20)),
                    net::NetworkConfig{.expected_nodes = n}, &metrics);
  overlay::GossipConfig cfg;
  cfg.view_size = 8;
  cfg.shuffle_size = 4;
  cfg.shuffle_interval = sim::seconds(5);
  cfg.fanout = 4;
  std::vector<net::NodeId> addrs;
  for (std::size_t i = 0; i < n; ++i) addrs.push_back(netw.new_node_id());
  std::vector<std::unique_ptr<overlay::GossipNode>> nodes;
  for (std::size_t i = 0; i < n; ++i) {
    nodes.push_back(
        std::make_unique<overlay::GossipNode>(netw, addrs[i], cfg));
  }
  const auto bootstrap_for = [&](std::size_t i) {
    std::vector<net::NodeId> view;
    for (std::size_t d = 1; d <= 4; ++d) view.push_back(addrs[(i + d) % n]);
    return view;
  };
  for (std::size_t i = 0; i < n; ++i) nodes[i]->join(bootstrap_for(i));

  const sim::SimTime quiesce = sim::plan_quiesce_time(plan);
  const sim::SimTime deadline = quiesce + recovery_bound("gossip");

  net::FaultTargets targets;
  targets.nodes = addrs;
  targets.crash = [&](std::size_t i) { nodes[i]->leave(); };
  targets.restart = [&](std::size_t i) { nodes[i]->join(bootstrap_for(i)); };
  net::FaultScheduler faults(netw, plan, std::move(targets));
  faults.start();
  register_run_telemetry(netw, faults);

  std::uint64_t next_rumor = 1;
  simu.schedule_periodic(sim::seconds(3), sim::seconds(5), [&] {
    const std::size_t who = next_rumor % n;
    if (nodes[who]->online()) nodes[who]->broadcast(next_rumor, 64);
    ++next_rumor;
  });

  // The probe rumor: originated just after quiesce by the lowest online
  // node, watched by the coverage oracle.
  const overlay::RumorId probe_id = 1'000'000;
  std::vector<overlay::GossipNode*> raw;
  for (auto& nd : nodes) raw.push_back(nd.get());
  sim::InvariantChecker checker(simu, &metrics);
  simu.schedule_at(quiesce + sim::seconds(1), [&] {
    for (auto& nd : nodes) {
      if (nd->online()) {
        nd->broadcast(probe_id, 64);
        break;
      }
    }
    checker.add("gossip-coverage-liveness",
                sim::invariants::coverage_converges_by(simu, raw, probe_id,
                                                       deadline));
  });
  checker.start(sim::millis(500));

  bool recovered = false;
  sim::SimTime recovered_at = 0;
  simu.schedule_periodic(quiesce + sim::seconds(2), sim::millis(100), [&] {
    if (recovered) return;
    for (const auto& nd : nodes) {
      if (nd->online() && !nd->has_seen(probe_id)) return;
    }
    recovered = true;
    recovered_at = simu.now();
  });
  simu.run_until(deadline + sim::seconds(10));
  checker.check_now();
  checker.stop();
  return verdict(checker, recovered,
                 sim::to_seconds(recovered_at - quiesce));
}

sim::ChaosScenario scenario_for(std::string_view protocol) {
  if (protocol == "pow") return run_pow;
  if (protocol == "raft") return run_raft;
  if (protocol == "pbft") return run_pbft;
  if (protocol == "kademlia") return run_kademlia;
  return run_gossip;
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const std::size_t idx = static_cast<std::size_t>(p * (v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    std::exit(2);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

int main(int argc, char** argv) {
  bench::ExperimentHarness ex("E21_chaos", argc, argv,
                              {.seed = 21, .chaos_aware = true});
  ex.describe(
      "E21: deterministic chaos sweep across protocol families",
      "randomized-but-seeded composed faults (partitions + crashes + loss + "
      "duplication + reordering + latency spikes, and churn for the DHT) "
      "never break safety, and every family recovers within its liveness "
      "bound once the faults heal",
      "sample N fault plans per protocol from a declarative ChaosSpace; run "
      "each under safety invariants + liveness oracles; shrink any failure "
      "to a minimal JSON repro (replay with --repro FILE)");

  sim::ChaosSpace base;
  if (!ex.chaos_space_path().empty()) {
    try {
      base = sim::ChaosSpace::from_json(read_file(ex.chaos_space_path()));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "--chaos-space %s: %s\n",
                   ex.chaos_space_path().c_str(), e.what());
      return 2;
    }
  }

  // --repro FILE: replay one shrunk failure byte-identically and report
  // whether it still fails. Exit 0 = reproduced, 3 = did not reproduce.
  if (!ex.repro_path().empty()) {
    sim::ChaosRepro repro;
    try {
      repro = sim::ChaosRepro::from_json(read_file(ex.repro_path()));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "--repro %s: %s\n", ex.repro_path().c_str(),
                   e.what());
      return 2;
    }
    g_telemetry = ex.telemetry();  // see attach_run_telemetry
    const sim::ChaosOutcome out =
        scenario_for(repro.protocol)(repro.plan, repro.seed);
    g_telemetry = nullptr;
    ex.add_row({{"protocol", repro.protocol},
                {"seed", std::uint64_t(repro.seed)},
                {"reproduced", !out.ok},
                {"violation", out.ok ? "-" : out.violation}});
    const int rc = ex.finish();
    if (rc != 0) return rc;
    if (!out.ok) {
      std::printf("\nreproduced: %s\n", out.violation.c_str());
      return 0;
    }
    std::printf("\nNOT reproduced (recorded violation was: %s)\n",
                repro.violation.c_str());
    return 3;
  }

  const std::size_t seeds = ex.chaos_seeds(64);
  ex.set_param("chaos_seeds", std::uint64_t(seeds));
  ex.set_param("horizon_s", sim::Value(sim::to_seconds(base.horizon), 0));

  std::atomic<std::uint64_t> total_violations{0};
  ex.run_points(std::size(kProtocols), [&](sim::PointScope& scope) {
    const std::string protocol = kProtocols[scope.index()];
    const sim::ChaosSpace space = space_for(base, protocol);
    const sim::ChaosEngine engine(space);
    const sim::ChaosScenario scenario = scenario_for(protocol);

    std::vector<double> recovery;
    std::uint64_t violations = 0;
    std::uint64_t recovered_runs = 0;
    // Chaos seed stream: a splitmix chain over (root seed, protocol index),
    // independent of --jobs and of the other protocols. The extra splitmix
    // hashes the start out of the shared step-G arithmetic progression —
    // plain `root ^ G*(index+1)` starts would make protocol streams mere
    // shifts of each other (pow and pbft would fuzz overlapping seed lists).
    std::uint64_t stream =
        scope.root_seed() ^ (0x9E3779B97F4A7C15ull * (scope.index() + 1));
    stream = sim::splitmix64(stream);
    for (std::size_t s = 0; s < seeds; ++s) {
      const std::uint64_t chaos_seed = sim::splitmix64(stream);
      const net::FaultPlan plan = engine.sample_plan(chaos_seed);
      const sim::ChaosOutcome out = scenario(plan, chaos_seed);
      if (!out.ok) {
        ++violations;
        const sim::ShrinkResult shrunk =
            engine.shrink(plan, chaos_seed, scenario);
        sim::ChaosRepro repro;
        repro.protocol = protocol;
        repro.seed = chaos_seed;
        repro.violation = shrunk.violation;
        repro.plan = shrunk.plan;
        const std::string path = "REPRO_E21_" + protocol + "_" +
                                 std::to_string(chaos_seed) + ".json";
        std::ofstream outf(path);
        outf << repro.to_json();
        std::fprintf(stderr,
                     "[E21] %s seed %llu VIOLATION: %s\n"
                     "[E21]   shrunk %zu -> %zu clauses (%zu runs); repro: "
                     "%s\n",
                     protocol.c_str(),
                     static_cast<unsigned long long>(chaos_seed),
                     out.violation.c_str(), shrunk.stats.initial_clauses,
                     shrunk.stats.final_clauses, shrunk.stats.runs,
                     path.c_str());
      } else if (!out.recovery_s.empty()) {
        ++recovered_runs;
        recovery.push_back(out.recovery_s.front());
      }
    }
    total_violations.fetch_add(violations, std::memory_order_relaxed);

    double mean = 0;
    for (const double r : recovery) mean += r;
    if (!recovery.empty()) mean /= static_cast<double>(recovery.size());
    scope.add_row({{"protocol", protocol},
                   {"seeds", std::uint64_t(seeds)},
                   {"violations", violations},
                   {"recovered", recovered_runs},
                   {"recovery_mean_s", sim::Value(mean, 2)},
                   {"recovery_p50_s", sim::Value(percentile(recovery, 0.5), 2)},
                   {"recovery_p95_s", sim::Value(percentile(recovery, 0.95), 2)},
                   {"recovery_max_s",
                    sim::Value(recovery.empty()
                                   ? 0
                                   : *std::max_element(recovery.begin(),
                                                       recovery.end()),
                               2)}});
  });

  const int rc = ex.finish();
  if (total_violations.load() > 0) {
    std::fprintf(stderr,
                 "\n[E21] %llu violation(s); shrunk repro files written "
                 "(replay with --repro FILE)\n",
                 static_cast<unsigned long long>(total_violations.load()));
    return 1;
  }
  std::printf(
      "\nComposed random adversity costs liveness windows, never safety:\n"
      "every sampled plan heals and every family recovers within its bound\n"
      "— the DHT even with churn running throughout. Any future violation\n"
      "arrives as a minimal replayable JSON repro, not a flaky red build.\n");
  return rc;
}
