// E15 — Churn and instability in open overlays (§II-B Problem 2).
// "P2P networks show high heterogeneity and high degrees of churn. To
// maintain the service these protocols must be fault-tolerant and
// self-adjusting, but this can cause performance problems and latency ...
// stable cloud servers have no rival."
#include <iterator>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "net/churn.hpp"
#include "net/network.hpp"
#include "overlay/kademlia.hpp"
#include "sim/metrics.hpp"

using namespace decentnet;

namespace {

struct Row {
  double success;
  double p50_s;
  double p90_s;
  double timeouts_per_lookup;
};

/// Kademlia under live churn: peers alternate sessions/downtime while
/// queries run. `mean_session_min == 0` disables churn (stable servers).
Row run(std::size_t n, double mean_session_min, std::uint64_t seed,
        sim::PointScope& scope) {
  sim::Simulator simu(seed);
  scope.instrument(simu);
  net::NetworkConfig net_cfg;
  net_cfg.expected_nodes = n;
  net::Network netw(
      simu, std::make_unique<net::LogNormalLatency>(sim::millis(60), 0.4),
      net_cfg, &scope.metrics());
  overlay::KademliaConfig cfg;
  std::vector<std::unique_ptr<overlay::KademliaNode>> nodes;
  for (std::size_t i = 0; i < n; ++i) {
    nodes.push_back(std::make_unique<overlay::KademliaNode>(
        netw, netw.new_node_id(), cfg));
  }
  nodes[0]->join({});
  for (std::size_t i = 1; i < n; ++i) {
    nodes[i]->join({{nodes[0]->id(), nodes[0]->addr()}});
    if (i % 16 == 0) simu.run_until(simu.now() + sim::seconds(2));
  }
  simu.run_until(simu.now() + sim::minutes(2));

  std::unique_ptr<net::ChurnDriver> churn;
  if (mean_session_min > 0) {
    net::ChurnConfig ccfg;
    ccfg.session = net::DurationDist::weibull(mean_session_min * 60, 0.6);
    ccfg.downtime =
        net::DurationDist::exponential_mean(mean_session_min * 30);
    ccfg.initially_online = 1.0;
    // Node 0 is the stable bootstrap; the rest churn.
    churn = std::make_unique<net::ChurnDriver>(
        simu, n, ccfg,
        [&](std::size_t i) {
          if (i == 0) return;
          if (!nodes[i]->online()) {
            nodes[i]->join({{nodes[0]->id(), nodes[0]->addr()}});
          }
        },
        [&](std::size_t i) {
          if (i == 0) return;
          if (nodes[i]->online()) nodes[i]->leave();
        });
    churn->start();
    simu.run_until(simu.now() + sim::minutes(20));  // reach churn steady state
  }

  sim::Histogram lat;
  sim::Rng rng(seed ^ 0xC0FFEE);
  std::uint64_t timeouts = 0;
  int ok = 0, issued = 0;
  const int kQueries = 120;
  for (int q = 0; q < kQueries; ++q) {
    overlay::KademliaNode* src = nullptr;
    for (int tries = 0; tries < 64 && src == nullptr; ++tries) {
      auto* cand = nodes[rng.uniform_int(n)].get();
      if (cand->online()) src = cand;
    }
    if (src == nullptr) continue;
    ++issued;
    // Look up the id of a currently online node: a "should succeed" query.
    overlay::KademliaNode* target = nullptr;
    for (int tries = 0; tries < 64 && target == nullptr; ++tries) {
      auto* cand = nodes[rng.uniform_int(n)].get();
      if (cand->online() && cand != src) target = cand;
    }
    if (target == nullptr) continue;
    const overlay::Key want = target->id();
    bool done = false;
    src->lookup(want, [&](overlay::LookupResult r) {
      done = true;
      timeouts += r.timeouts;
      // Success: the true owner appears among the k returned contacts.
      for (const auto& c : r.closest) {
        if (c.id == want) {
          ++ok;
          lat.record(sim::to_seconds(r.elapsed));
          break;
        }
      }
    });
    simu.run_until(simu.now() + sim::minutes(2));
    (void)done;
  }
  Row row;
  row.success = issued == 0 ? 0 : static_cast<double>(ok) / issued;
  row.p50_s = lat.percentile(50);
  row.p90_s = lat.percentile(90);
  row.timeouts_per_lookup =
      issued == 0 ? 0 : static_cast<double>(timeouts) / issued;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bench::ExperimentHarness ex("E15_churn", argc, argv, {.seed = 17});
  ex.describe(
      "E15: overlay quality vs churn intensity",
      "high churn degrades open overlays: lookups hit departed nodes, pay "
      "timeouts, and fail — while a stable (cloud-like) population keeps "
      "answering fast",
      "300-node Kademlia with live Weibull session churn; sweep the mean "
      "session length down from 'stable servers' to minutes-long sessions; "
      "120 find-node queries per row");

  struct Cfg {
    const char* label;
    double session_min;
  };
  const Cfg rows[] = {
      {"stable servers (no churn)", 0},
      {"mean session 120 min", 120},
      {"mean session 60 min", 60},
      {"mean session 20 min", 20},
      {"mean session 5 min", 5},
  };
  // Independent sweep points: each builds its own Simulator from the root
  // seed, so with --jobs N they run on worker threads and merge in index
  // order — the artifact bytes don't depend on N.
  ex.run_points(std::size(rows), [&](sim::PointScope& scope) {
    const Cfg& r = rows[scope.index()];
    const Row out = run(300, r.session_min, scope.root_seed(), scope);
    scope.add_row({{"population", r.label},
                   {"success", bench::Value(out.success, 2)},
                   {"p50_s", bench::Value(out.p50_s, 2)},
                   {"p90_s", bench::Value(out.p90_s, 2)},
                   {"timeouts_per_lookup",
                    bench::Value(out.timeouts_per_lookup, 1)}});
  });
  const int rc = ex.finish();
  std::printf(
      "\nThe stable row answers nearly everything within a couple of RTT\n"
      "rounds; as sessions shrink toward file-sharing-like lifetimes the\n"
      "timeout tax mounts and success erodes — Problem 2's 'no rival to\n"
      "stable cloud servers' in one table.\n");
  return rc;
}
