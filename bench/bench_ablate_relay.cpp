// Ablation: full-block flooding vs compact (header+txids) relay.
//
// Bitcoin's answer to E10's propagation-delay forks was BIP152 compact
// blocks: once mempools are synchronized, a block announcement shrinks from
// ~1 MB to a few KB, which shortens propagation and cuts the stale rate —
// without touching the throughput ceiling (the block is still the block).
#include "bench_util.hpp"
#include "core/scenarios.hpp"

using namespace decentnet;

int main(int argc, char** argv) {
  bench::ExperimentHarness ex("ablate_relay", argc, argv, {.seed = 42});
  ex.describe(
      "Ablation: block relay encoding (full bodies vs compact)",
      "(design-choice check) compact relay reduces relay bytes and the "
      "stale rate, but does not change the E5 throughput ceiling",
      "same PoW mesh under saturating load with 2 Mbit/s uplinks modeled "
      "(full 100 KB blocks pay real serialization delay), 30 s blocks; "
      "compare stale rate and throughput");

  for (const bool compact : {false, true}) {
    core::PowScenarioConfig cfg;
    cfg.params.retarget_window = 0;
    cfg.params.initial_difficulty = 1e6;
    cfg.params.target_block_interval = sim::seconds(30);
    cfg.params.max_block_bytes = 100'000;
    cfg.total_hashrate = 1e6 / 30.0;
    cfg.nodes = 24;
    cfg.miners = 8;
    cfg.wallets = 32;
    cfg.tx_rate_per_sec = 12;
    cfg.common.latency = sim::millis(150);
    // Serialization delay is the story here: 2 Mbit/s consumer uplink.
    cfg.common.transport.mode = net::TransportMode::Bandwidth;
    cfg.common.transport.link.up_bps = 2e6 / 8;
    cfg.common.transport.link.down_bps = 16e6 / 8;
    cfg.common.duration = sim::minutes(90);
    cfg.compact_relay = compact;
    const auto r = core::run_pow_scenario(cfg, ex);
    ex.add_row({{"relay", compact ? "compact (header+txids)" : "full blocks"},
                {"tps", bench::Value(r.throughput_tps, 1)},
                {"stale_rate", bench::Value(r.stale_rate, 4)},
                {"blocks", std::uint64_t{r.blocks_on_chain}},
                {"submitted_txs", std::uint64_t{r.submitted_txs}}});
  }
  const int rc = ex.finish();
  std::printf(
      "\nWith consumer-grade uplinks, flooding a 100 KB body to every\n"
      "neighbor serializes for hundreds of milliseconds per hop and the\n"
      "stale rate shows it; the compact announcement is ~2%% of the bytes\n"
      "and propagates at latency speed. Throughput is unchanged either\n"
      "way: the ceiling is the protocol, not the encoding.\n");
  return rc;
}
