// E9 — The scalability trilemma (§III-C Problem 2).
// "Buterin proposed the scalability trilemma: a blockchain technology can
// only address two of the three challenges: scalability, decentralization,
// and security."
#include "bench_util.hpp"
#include "core/trilemma.hpp"

using namespace decentnet;

int main(int argc, char** argv) {
  bench::ExperimentHarness ex("E9_trilemma", argc, argv);
  ex.describe(
      "E9: quantifying the scalability trilemma",
      "scalability (O(n) > O(c) throughput), decentralization (commodity "
      "nodes can validate) and security (cost to capture consensus) cannot "
      "all be maximized; sharding trades security for throughput",
      "sweep shard counts for a 10k-validator ecosystem at c = 15 tps per "
      "node; report all three axes per design");

  const auto sweep =
      core::trilemma_sweep(10'000, 15.0, {1, 2, 4, 8, 16, 64, 256, 1024});
  for (const auto& p : sweep) {
    ex.add_row({{"shards", std::uint64_t{p.design.shards}},
                {"throughput_tps", bench::Value(p.throughput_tps, 0)},
                {"scalability_x", bench::Value(p.scalability, 0)},
                {"per_node_load", bench::Value(p.per_node_load, 4)},
                {"security_capture_fraction", bench::Value(p.security, 4)}});
  }
  const int rc = ex.finish();
  std::printf(
      "\nInvariant: scalability x security = 0.5 across the whole sweep —\n"
      "every shard of extra throughput divides the resources an attacker\n"
      "must corrupt to seize one shard. The full-broadcast design (1 shard)\n"
      "keeps 51%%-security but is pinned to one node's validation capacity:\n"
      "Bitcoin's ~7 tps (E5) is this corner of the space. VISA picks\n"
      "scalability + a trusted operator instead of open security.\n");
  return rc;
}
