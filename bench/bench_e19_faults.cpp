// E19 — Partition/heal recovery across consensus families (robustness).
// The paper's Problems 1-4 are all claims about behaviour *under adversity*;
// this experiment scripts the adversity. A deterministic FaultPlan splits
// the network (plus a message-duplication window and, for Raft, a node
// crash/restart), heals it, and we measure how long each consensus family
// takes to make post-heal progress on every node — with online invariant
// checkers (single leader per term, commit-log agreement, chain-tip
// convergence) confirming that safety held throughout.
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "bench_util.hpp"
#include "bft/pbft.hpp"
#include "bft/raft.hpp"
#include "chain/miner.hpp"
#include "chain/node.hpp"
#include "chain/wallet.hpp"
#include "net/faults.hpp"
#include "net/network.hpp"
#include "net/topology.hpp"
#include "sim/invariants.hpp"

using namespace decentnet;

namespace {

struct Row {
  bool recovered = false;
  double recovery_s = 0;   // heal -> first post-heal progress on every node
  std::uint64_t violations = 0;
  std::uint64_t part_drops = 0;
  std::uint64_t dups = 0;
};

Row finish_row(bool recovered, sim::SimTime recovered_at, sim::SimTime heal_at,
               const sim::InvariantChecker& checker, sim::PointScope& scope) {
  Row row;
  row.recovered = recovered;
  row.recovery_s =
      recovered ? sim::to_seconds(recovered_at - heal_at) : 0;
  row.violations = checker.violations().size();
  row.part_drops = scope.metrics().counter("net/dropped_partition").value();
  row.dups = scope.metrics().counter("net/duplicated").value();
  return row;
}

// Raft, n = 5: partition {0,1} away from {2,3,4} AND crash node 4, so the
// majority side loses quorum too — nothing commits until heal+restart. The
// recovery clock measures heal -> a post-heal command applied on all five.
Row run_raft(sim::SimDuration partition_len, std::uint64_t seed,
             sim::PointScope& scope) {
  sim::Simulator simu(seed);
  scope.instrument(simu);
  const std::size_t n = 5;
  net::Network netw(simu,
                    std::make_unique<net::ConstantLatency>(sim::millis(5)),
                    net::NetworkConfig{.expected_nodes = n},
                    &scope.metrics());
  std::vector<net::NodeId> addrs;
  for (std::size_t i = 0; i < n; ++i) addrs.push_back(netw.new_node_id());

  sim::InvariantChecker checker(simu, &scope.metrics());
  sim::CommitLogInvariant commits;
  commits.bind(&checker);

  const sim::SimTime part_at = sim::seconds(10);
  const sim::SimTime heal_at = part_at + partition_len;

  std::vector<std::unique_ptr<bft::RaftNode>> nodes;
  std::map<std::uint64_t, sim::SimTime> proposed_at;
  std::vector<bool> post_heal_commit(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    nodes.push_back(std::make_unique<bft::RaftNode>(netw, addrs[i], i,
                                                    bft::RaftConfig{}));
    nodes.back()->set_group(addrs);
    nodes.back()->set_commit_hook(
        [&, i](std::uint64_t seq, const bft::Command& cmd) {
          commits.record(i, seq, cmd.id);
          const auto it = proposed_at.find(cmd.id);
          if (it != proposed_at.end() && it->second >= heal_at) {
            post_heal_commit[i] = true;
          }
        });
  }
  std::vector<bft::RaftNode*> raw;
  for (auto& nd : nodes) raw.push_back(nd.get());
  checker.add("raft-single-leader",
              sim::invariants::single_leader_per_term(raw));
  checker.start(sim::millis(200));
  for (auto& nd : nodes) nd->start();

  net::FaultPlan plan;
  plan.partition(part_at, "raft-split", {{addrs[0].value, addrs[1].value}},
                 heal_at)
      .duplicate_window(part_at, 0.05, heal_at)
      .crash(part_at, 4)
      .restart(heal_at, 4);
  net::FaultTargets targets;
  targets.nodes = addrs;
  targets.crash = [&](std::size_t i) { nodes[i]->crash(); };
  targets.restart = [&](std::size_t i) { nodes[i]->restart(); };
  net::FaultScheduler faults(netw, plan, std::move(targets));
  faults.start();

  // Workload: whoever currently leads gets a fresh command twice a second.
  std::uint64_t next_id = 1;
  simu.schedule_periodic(sim::millis(500), sim::millis(500), [&] {
    for (auto& nd : nodes) {
      if (!nd->is_leader()) continue;
      bft::Command c;
      c.id = next_id;
      c.client = 1;
      c.op = "w";
      if (nd->propose(c)) proposed_at[next_id++] = simu.now();
      break;
    }
  });

  bool recovered = false;
  sim::SimTime recovered_at = 0;
  simu.schedule_periodic(heal_at + sim::millis(100), sim::millis(100), [&] {
    if (recovered) return;
    for (std::size_t i = 0; i < n; ++i) {
      if (!post_heal_commit[i]) return;
    }
    recovered = true;
    recovered_at = simu.now();
  });
  simu.run_until(heal_at + sim::minutes(2));
  checker.stop();
  return finish_row(recovered, recovered_at, heal_at, checker, scope);
}

// PBFT, f = 1 (n = 4): isolate the view-0 primary. The backups view-change
// and keep executing; the clock measures heal -> a post-heal request executed
// on ALL FOUR replicas, i.e. how fast the stale ex-primary is resynced into
// the current view.
Row run_pbft(sim::SimDuration partition_len, std::uint64_t seed,
             sim::PointScope& scope) {
  sim::Simulator simu(seed);
  scope.instrument(simu);
  bft::PbftConfig cfg;
  cfg.f = 1;
  net::Network netw(simu,
                    std::make_unique<net::ConstantLatency>(sim::millis(5)),
                    net::NetworkConfig{.expected_nodes = 3 * cfg.f + 2},
                    &scope.metrics());
  const std::size_t n = 3 * cfg.f + 1;
  std::vector<net::NodeId> addrs;
  for (std::size_t i = 0; i < n; ++i) addrs.push_back(netw.new_node_id());

  sim::InvariantChecker checker(simu, &scope.metrics());
  sim::CommitLogInvariant commits;
  commits.bind(&checker);
  checker.add("pbft-commit-agreement", commits.predicate());
  checker.start(sim::millis(200));

  const sim::SimTime part_at = sim::seconds(10);
  const sim::SimTime heal_at = part_at + partition_len;

  std::vector<sim::SimTime> submit_times;  // index = cmd id - 1
  std::vector<bool> post_heal_exec(n, false);
  std::vector<std::unique_ptr<bft::PbftReplica>> replicas;
  for (std::size_t i = 0; i < n; ++i) {
    replicas.push_back(
        std::make_unique<bft::PbftReplica>(netw, addrs[i], i, cfg));
    replicas.back()->set_group(addrs);
    replicas.back()->set_commit_hook(
        [&, i](std::uint64_t seq, const bft::Command& cmd) {
          commits.record(i, seq, cmd.id);  // batch_size=1: one cmd per seq
          if (cmd.id <= submit_times.size() &&
              submit_times[cmd.id - 1] >= heal_at) {
            post_heal_exec[i] = true;
          }
        });
  }
  bft::PbftClient client(netw, netw.new_node_id(), 1, cfg);
  client.set_group(addrs);

  net::FaultPlan plan;
  plan.partition(part_at, "isolate-primary", {{addrs[0].value}}, heal_at)
      .duplicate_window(part_at, 0.05, heal_at);
  net::FaultScheduler faults(netw, plan, {.nodes = addrs});
  faults.start();

  simu.schedule_periodic(sim::seconds(1), sim::seconds(2), [&] {
    submit_times.push_back(simu.now());  // ids are assigned 1,2,3,...
    client.submit("w");
  });

  bool recovered = false;
  sim::SimTime recovered_at = 0;
  simu.schedule_periodic(heal_at + sim::millis(100), sim::millis(100), [&] {
    if (recovered) return;
    for (std::size_t i = 0; i < n; ++i) {
      if (!post_heal_exec[i]) return;
    }
    recovered = true;
    recovered_at = simu.now();
  });
  simu.run_until(heal_at + sim::minutes(2));
  checker.stop();
  return finish_row(recovered, recovered_at, heal_at, checker, scope);
}

// PoW, 16 nodes / 4 miners (two per side): both halves keep mining through
// the split, fork, and must reorg back to one tip after heal. The clock
// measures heal -> every node on the same best tip; a chain-tip-convergence
// invariant armed one minute after heal confirms the fork actually died.
Row run_pow(sim::SimDuration partition_len, std::uint64_t seed,
            sim::PointScope& scope) {
  sim::Simulator simu(seed);
  scope.instrument(simu);
  net::Network netw(simu,
                    std::make_unique<net::ConstantLatency>(sim::millis(50)),
                    net::NetworkConfig{.expected_nodes = 16},
                    &scope.metrics());
  chain::ChainParams params;
  params.target_block_interval = sim::seconds(15);
  params.retarget_window = 0;  // fixed difficulty: deterministic block rate
  params.initial_difficulty = 1e6;
  chain::Wallet payout = chain::Wallet::from_seed(0xE19);
  const chain::BlockPtr genesis =
      chain::make_genesis(payout.address(), 10000, params.initial_difficulty);

  const std::size_t n = 16;
  std::vector<net::NodeId> addrs;
  for (std::size_t i = 0; i < n; ++i) addrs.push_back(netw.new_node_id());
  sim::Rng topo_rng(seed ^ 0x70B0);
  const auto adj = net::random_graph(n, 4, topo_rng);
  std::vector<std::unique_ptr<chain::FullNode>> nodes;
  for (std::size_t i = 0; i < n; ++i) {
    nodes.push_back(
        std::make_unique<chain::FullNode>(netw, addrs[i], params, genesis));
    std::vector<net::NodeId> nbrs;
    for (std::size_t j : adj[i]) nbrs.push_back(addrs[j]);
    nodes.back()->connect(std::move(nbrs));
  }
  const double total_rate =
      params.initial_difficulty / sim::to_seconds(params.target_block_interval);
  std::vector<std::unique_ptr<chain::Miner>> miners;
  for (std::size_t i : {0ul, 1ul, 8ul, 9ul}) {
    miners.push_back(std::make_unique<chain::Miner>(
        *nodes[i], payout.address(), total_rate / 4));
    miners.back()->start();
  }

  const sim::SimTime part_at = sim::minutes(5);
  const sim::SimTime heal_at = part_at + partition_len;
  std::unordered_set<std::uint64_t> side_a;
  for (std::size_t i = 0; i < n / 2; ++i) side_a.insert(addrs[i].value);
  net::FaultPlan plan;
  plan.partition(part_at, "pow-split", {side_a}, heal_at)
      .duplicate_window(part_at, 0.05, heal_at);
  net::FaultScheduler faults(netw, plan, {.nodes = addrs});
  faults.start();

  sim::InvariantChecker checker(simu, &scope.metrics());
  std::vector<chain::FullNode*> raw;
  for (auto& nd : nodes) raw.push_back(nd.get());
  // Arm convergence only after a post-heal grace period — during the split
  // the two sides legitimately diverge.
  simu.schedule_at(heal_at + sim::minutes(1), [&] {
    checker.add("chain-tips-converge",
                sim::invariants::chain_tips_converge(raw, 2));
  });
  checker.start(sim::seconds(1));

  bool recovered = false;
  sim::SimTime recovered_at = 0;
  simu.schedule_periodic(heal_at + sim::millis(100), sim::millis(100), [&] {
    if (recovered) return;
    for (const auto& nd : nodes) {
      if (!(nd->tree().best_tip() == nodes[0]->tree().best_tip())) return;
    }
    recovered = true;
    recovered_at = simu.now();
  });
  simu.run_until(heal_at + sim::minutes(3));
  checker.stop();
  for (auto& m : miners) m->stop();
  return finish_row(recovered, recovered_at, heal_at, checker, scope);
}

}  // namespace

int main(int argc, char** argv) {
  bench::ExperimentHarness ex("E19_faults", argc, argv, {.seed = 19});
  ex.describe(
      "E19: partition/heal recovery across consensus families",
      "permissionless and permissioned consensus both survive a scripted "
      "partition, but pay for recovery differently: PoW re-converges by "
      "reorg after the next block, Raft re-elects and back-fills logs, PBFT "
      "view-changes around the cut-off primary and resyncs it on heal — all "
      "with zero safety-invariant violations",
      "deterministic FaultPlan: named partition + 5% duplication window "
      "(Raft also crash/restarts a node); sweep the partition length; "
      "recovery = heal -> post-heal progress visible on every node; online "
      "invariant checkers sample throughout");

  struct Cfg {
    const char* protocol;
    double partition_s;
  };
  const Cfg rows[] = {
      {"pow", 30},  {"pow", 120},  {"raft", 30},
      {"raft", 120}, {"pbft", 30}, {"pbft", 120},
  };
  ex.run_points(std::size(rows), [&](sim::PointScope& scope) {
    const Cfg& r = rows[scope.index()];
    const sim::SimDuration len = sim::seconds(r.partition_s);
    Row out;
    if (std::string_view(r.protocol) == "pow") {
      out = run_pow(len, scope.root_seed(), scope);
    } else if (std::string_view(r.protocol) == "raft") {
      out = run_raft(len, scope.root_seed(), scope);
    } else {
      out = run_pbft(len, scope.root_seed(), scope);
    }
    scope.add_row({{"protocol", r.protocol},
                   {"partition_s", bench::Value(r.partition_s, 0)},
                   {"recovered", out.recovered},
                   {"recovery_s", bench::Value(out.recovery_s, 2)},
                   {"violations", out.violations},
                   {"part_drops", out.part_drops},
                   {"dups", out.dups}});
  });
  const int rc = ex.finish();
  std::printf(
      "\nEvery family heals, but on its own clock: PoW waits for the next\n"
      "block to trigger the reorg, Raft for an election round plus log\n"
      "back-fill, PBFT for the ex-primary to be pulled into the current\n"
      "view. Violations stay at zero — partitions cost liveness here, not\n"
      "safety.\n");
  return rc;
}
