// E11 — Permissioned BFT consensus vs permissionless PoW (§IV).
// "The advent of permissioned blockchains has given new life to research on
// practical solutions to problems like consensus ... [Fabric] avoids costly
// proof-of-work by using different consensus algorithms such as CFT or BFT
// protocols" — BFT commits in milliseconds among tens of known nodes; PoW
// takes minutes among thousands of anonymous ones, and BFT's quadratic
// message cost is why it stays small.
#include <iterator>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "bft/pbft.hpp"
#include "bft/raft.hpp"
#include "core/scenarios.hpp"
#include "net/network.hpp"
#include "sim/metrics.hpp"

using namespace decentnet;

namespace {

struct BftRun {
  double tps = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double msgs_per_commit = 0;
};

BftRun run_pbft(std::size_t f, double offered_tps, sim::SimDuration dur,
                sim::PointScope& scope) {
  sim::Simulator simu(scope.root_seed());
  scope.instrument(simu);
  const std::size_t n = 3 * f + 1;
  net::NetworkConfig net_cfg;
  net_cfg.expected_nodes = n + 1;  // replicas + client
  net::Network netw(simu,
                    std::make_unique<net::ConstantLatency>(sim::millis(5)),
                    net_cfg, &scope.metrics());
  bft::PbftConfig cfg;
  cfg.f = f;
  cfg.batch_size = 16;
  std::vector<net::NodeId> addrs;
  for (std::size_t i = 0; i < n; ++i) addrs.push_back(netw.new_node_id());
  std::vector<std::unique_ptr<bft::PbftReplica>> replicas;
  for (std::size_t i = 0; i < n; ++i) {
    replicas.push_back(
        std::make_unique<bft::PbftReplica>(netw, addrs[i], i, cfg));
    replicas.back()->set_group(addrs);
  }
  bft::PbftClient client(netw, netw.new_node_id(), 1, cfg);
  client.set_group(addrs);
  sim::Histogram lat;
  client.set_done_hook([&](const bft::Command&, sim::SimDuration l) {
    lat.record(sim::to_millis(l));
  });
  sim::Rng rng(3);
  auto tick = std::make_shared<std::function<void()>>();
  std::weak_ptr<std::function<void()>> weak = tick;
  *tick = [&, weak] {
    auto strong = weak.lock();
    client.submit("op", 128);
    if (strong) {
      simu.schedule(sim::seconds(rng.exponential(offered_tps)),
                    [strong] { (*strong)(); });
    }
  };
  simu.schedule(sim::millis(10), [tick] { (*tick)(); });
  const auto msgs_before = netw.messages_sent();
  simu.run_until(dur);
  BftRun out;
  out.tps = static_cast<double>(client.completed()) / sim::to_seconds(dur);
  out.p50_ms = lat.percentile(50);
  out.p99_ms = lat.percentile(99);
  out.msgs_per_commit =
      client.completed() == 0
          ? 0
          : static_cast<double>(netw.messages_sent() - msgs_before) /
                static_cast<double>(client.completed());
  return out;
}

BftRun run_raft(std::size_t n, double offered_tps, sim::SimDuration dur,
                sim::PointScope& scope) {
  sim::Simulator simu(scope.root_seed() + 1);
  scope.instrument(simu);
  net::NetworkConfig net_cfg;
  net_cfg.expected_nodes = n;
  net::Network netw(simu,
                    std::make_unique<net::ConstantLatency>(sim::millis(5)),
                    net_cfg, &scope.metrics());
  std::vector<net::NodeId> addrs;
  for (std::size_t i = 0; i < n; ++i) addrs.push_back(netw.new_node_id());
  std::vector<std::unique_ptr<bft::RaftNode>> nodes;
  sim::Histogram lat;
  std::unordered_map<std::uint64_t, sim::SimTime> inflight;
  std::uint64_t committed = 0;
  for (std::size_t i = 0; i < n; ++i) {
    nodes.push_back(
        std::make_unique<bft::RaftNode>(netw, addrs[i], i, bft::RaftConfig{}));
    nodes.back()->set_group(addrs);
  }
  nodes.front()->set_commit_hook(
      [&](std::uint64_t, const bft::Command& cmd) {
        const auto it = inflight.find(cmd.id);
        if (it == inflight.end()) return;
        lat.record(sim::to_millis(simu.now() - it->second));
        inflight.erase(it);
        ++committed;
      });
  for (auto& nd : nodes) nd->start();
  simu.run_until(sim::seconds(2));
  sim::Rng rng(5);
  std::uint64_t next_id = 1;
  auto tick = std::make_shared<std::function<void()>>();
  std::weak_ptr<std::function<void()>> weak = tick;
  *tick = [&, weak] {
    auto strong = weak.lock();
    for (auto& nd : nodes) {
      if (nd->is_leader()) {
        bft::Command cmd;
        cmd.id = next_id++;
        cmd.wire_bytes = 128;
        inflight.emplace(cmd.id, simu.now());
        nd->propose(std::move(cmd));
        break;
      }
    }
    if (strong) {
      simu.schedule(sim::seconds(rng.exponential(offered_tps)),
                    [strong] { (*strong)(); });
    }
  };
  simu.schedule(sim::millis(10), [tick] { (*tick)(); });
  const auto msgs_before = netw.messages_sent();
  const sim::SimTime start = simu.now();
  simu.run_until(start + dur);
  BftRun out;
  out.tps = static_cast<double>(committed) / sim::to_seconds(dur);
  out.p50_ms = lat.percentile(50);
  out.p99_ms = lat.percentile(99);
  out.msgs_per_commit = committed == 0 ? 0
                                       : static_cast<double>(
                                             netw.messages_sent() -
                                             msgs_before) /
                                             static_cast<double>(committed);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::ExperimentHarness ex("E11_bft_vs_pow", argc, argv, {.seed = 7});
  ex.describe(
      "E11: permissioned consensus (PBFT/Raft) vs permissionless PoW",
      "BFT among a limited set of authenticated nodes commits in "
      "network-RTT time at thousands of tps; PoW needs minutes and caps at "
      "single-digit tps — but BFT's all-to-all messaging is why "
      "'the number of entities participating in the protocol is limited'",
      "offered load 500 tps, 5 ms LAN; sweep replica count; PoW row "
      "reproduced from E5's Bitcoin-like configuration");

  // 10 independent sweep points (5 PBFT sizes, 4 Raft sizes, 1 PoW); each
  // builds its own Simulator from the root seed, so with --jobs N they run
  // on worker threads and merge in index order — artifact bytes are
  // independent of N.
  const std::size_t kPbftF[] = {1, 2, 3, 5, 8};
  const std::size_t kRaftN[] = {3, 5, 7, 11};
  ex.run_points(std::size(kPbftF) + std::size(kRaftN) + 1,
                [&](sim::PointScope& scope) {
    const std::size_t i = scope.index();
    if (i < std::size(kPbftF)) {
      const std::size_t f = kPbftF[i];
      const auto r = run_pbft(f, 500, sim::seconds(30), scope);
      scope.add_row({{"system", "PBFT f=" + std::to_string(f)},
                     {"replicas", std::uint64_t{3 * f + 1}},
                     {"tps", bench::Value(r.tps, 0)},
                     {"p50_ms", bench::Value(r.p50_ms, 1)},
                     {"p99_ms", bench::Value(r.p99_ms, 1)},
                     {"msgs_per_commit", bench::Value(r.msgs_per_commit, 1)}});
    } else if (i < std::size(kPbftF) + std::size(kRaftN)) {
      const std::size_t n = kRaftN[i - std::size(kPbftF)];
      const auto r = run_raft(n, 500, sim::seconds(30), scope);
      scope.add_row({{"system", "Raft n=" + std::to_string(n)},
                     {"replicas", std::uint64_t{n}},
                     {"tps", bench::Value(r.tps, 0)},
                     {"p50_ms", bench::Value(r.p50_ms, 1)},
                     {"p99_ms", bench::Value(r.p99_ms, 1)},
                     {"msgs_per_commit", bench::Value(r.msgs_per_commit, 1)}});
    } else {
      core::PowScenarioConfig cfg;
      cfg.params.retarget_window = 0;
      cfg.params.initial_difficulty = 1e9;
      cfg.total_hashrate = 1e9 / 600.0;
      cfg.nodes = 24;
      cfg.miners = 8;
      cfg.wallets = 32;
      cfg.tx_rate_per_sec = 10;
      cfg.common.duration = sim::hours(1);
      const auto r = core::run_pow_scenario(cfg, scope);
      scope.add_row({{"system", "PoW (Bitcoin-like)"},
                     {"replicas", 24},
                     {"tps", bench::Value(r.throughput_tps, 1)},
                     {"p50_ms", "~600000"},
                     {"p99_ms", "~3600000"}});
    }
  });
  const int rc = ex.finish();
  std::printf(
      "\nPBFT latency stays at a few RTTs but msgs/commit grows with n^2 —\n"
      "the structural reason permissioned consensus runs among consortium\n"
      "members, not the open Internet. Raft (CFT) is cheaper still when\n"
      "byzantine behaviour is handled by identity/legal trust (the MSP).\n"
      "PoW 'latency' is confirmation depth: ~10 min for one block, ~1 h for\n"
      "the customary six.\n");
  return rc;
}
