// E13 — Edge-centric computing with permissioned trust (§V).
// "Modern services are data-intensive and latency-sensitive, sometimes
// making a centralized cloud a poor match for them ... Control must be at
// the edge ... The level of trust and the speed needed by decentralized edge
// services may be achieved through permissioned blockchains."
#include <memory>

#include "bench_util.hpp"
#include "edge/federation.hpp"
#include "fabric/channel.hpp"
#include "fabric/contracts.hpp"
#include "net/network.hpp"
#include "sim/metrics.hpp"

using namespace decentnet;

int main(int argc, char** argv) {
  bench::ExperimentHarness ex("E13_edge", argc, argv, {.seed = 99});
  ex.describe(
      "E13: edge federation vs centralized cloud",
      "serving from in-region nano-datacenters cuts latency and keeps "
      "control in the user's administrative domain; a permissioned channel "
      "records cross-domain usage so federated orgs need no trusted third "
      "party",
      "5 regions, 2 nano-DCs each, 100 users, geo latency model; 2000 "
      "requests per policy; cross-domain usage settles on a fabric channel "
      "running on the same network");

  for (const auto policy :
       {edge::PlacementPolicy::CloudOnly, edge::PlacementPolicy::EdgeFirst}) {
    sim::Simulator simu(ex.seed());
    simu.set_trace(ex.trace());
    auto geo_model = std::make_unique<net::GeoLatency>(0.15);
    net::GeoLatency* geo = geo_model.get();
    net::Network netw(simu, std::move(geo_model), {}, &ex.metrics());
    edge::Federation fed(netw, *geo, {}, {});

    // Permissioned trust substrate on the same network: usage records are
    // metered through the energy-trading style contract.
    fabric::MembershipService msp(5);
    fabric::EndorsementPolicy fpolicy{1};
    fabric::FabricPeer peer(netw, netw.new_node_id(), "federation-registry",
                            msp, fpolicy, 999);
    auto kv = std::make_shared<fabric::KvContract>();
    peer.install(kv);
    peer.set_event_source(true);
    fabric::SoloOrderer orderer(netw, netw.new_node_id(),
                                fabric::OrdererConfig{});
    orderer.register_peer(peer.addr());
    fabric::FabricClient registry(netw, netw.new_node_id(), fpolicy);
    registry.set_endorsers({&peer});
    registry.set_orderer(&orderer);

    std::uint64_t usage_records = 0;
    std::uint64_t usage_seq = 0;
    fed.set_usage_recorder([&](const std::string& provider,
                               const std::string& consumer) {
      ++usage_records;
      registry.invoke("kv",
                      {"put",
                       "usage/" + provider + "/" + consumer + "/" +
                           std::to_string(usage_seq++),
                       "1"},
                      [](bool, const std::string&, sim::SimDuration) {});
    });

    sim::Histogram lat;
    std::size_t ok = 0, in_region = 0, in_domain = 0, total = 0;
    sim::Rng rng(ex.seed() ^ 13);
    const std::size_t kRequests = 2000;
    for (std::size_t i = 0; i < kRequests; ++i) {
      simu.schedule(sim::millis(10) * static_cast<sim::SimDuration>(i),
                    [&, policy] {
                      fed.issue_request(
                          policy, rng,
                          [&](bool success, sim::SimDuration latency,
                              bool region, bool domain) {
                            ++total;
                            if (success) {
                              ++ok;
                              lat.record(sim::to_millis(latency));
                            }
                            if (region) ++in_region;
                            if (domain) ++in_domain;
                          });
                    });
    }
    simu.run_until(sim::minutes(5));
    ex.add_row({{"policy", policy == edge::PlacementPolicy::CloudOnly
                               ? "cloud-only"
                               : "edge-first"},
                {"ok", std::uint64_t{ok}},
                {"p50_ms", bench::Value(lat.percentile(50), 1)},
                {"p99_ms", bench::Value(lat.percentile(99), 1)},
                {"in_region_pct",
                 bench::Value(100.0 * static_cast<double>(in_region) /
                                  static_cast<double>(total),
                              1)},
                {"in_domain_pct",
                 bench::Value(100.0 * static_cast<double>(in_domain) /
                                  static_cast<double>(total),
                              1)},
                {"usage_records", usage_records}});
  }
  const int rc = ex.finish();
  std::printf(
      "\nEdge-first turns a transcontinental round trip into an in-region\n"
      "hop for ~90%% of requests, and the federation's cross-domain usage is\n"
      "accounted on the permissioned channel instead of a trusted broker —\n"
      "decentralized control (edge) + decentralized trust (permissioned\n"
      "ledger), the paper's closing proposal.\n");
  return rc;
}
