// E13 — Edge-centric computing with permissioned trust (§V).
// "Modern services are data-intensive and latency-sensitive, sometimes
// making a centralized cloud a poor match for them ... Control must be at
// the edge ... The level of trust and the speed needed by decentralized edge
// services may be achieved through permissioned blockchains."
#include "bench_util.hpp"
#include "core/scenarios.hpp"

using namespace decentnet;

int main(int argc, char** argv) {
  bench::ExperimentHarness ex("E13_edge", argc, argv, {.seed = 99});
  ex.describe(
      "E13: edge federation vs centralized cloud",
      "serving from in-region nano-datacenters cuts latency and keeps "
      "control in the user's administrative domain; a permissioned channel "
      "records cross-domain usage so federated orgs need no trusted third "
      "party",
      "5 regions, 2 nano-DCs each, 100 users, geo latency model; 2000 "
      "requests per policy; cross-domain usage settles on a fabric channel "
      "running on the same network");

  for (const auto policy :
       {edge::PlacementPolicy::CloudOnly, edge::PlacementPolicy::EdgeFirst}) {
    core::EdgeScenarioConfig cfg;
    cfg.policy = policy;
    // Seed/trace/metrics come from the harness overload.
    const auto r = core::run_edge_scenario(cfg, ex);
    ex.add_row({{"policy", policy == edge::PlacementPolicy::CloudOnly
                               ? "cloud-only"
                               : "edge-first"},
                {"ok", r.ok},
                {"p50_ms", bench::Value(r.latency_p50_ms, 1)},
                {"p99_ms", bench::Value(r.latency_p99_ms, 1)},
                {"in_region_pct", bench::Value(r.in_region_pct, 1)},
                {"in_domain_pct", bench::Value(r.in_domain_pct, 1)},
                {"usage_records", r.usage_records}});
  }
  const int rc = ex.finish();
  std::printf(
      "\nEdge-first turns a transcontinental round trip into an in-region\n"
      "hop for ~90%% of requests, and the federation's cross-domain usage is\n"
      "accounted on the permissioned channel instead of a trusted broker —\n"
      "decentralized control (edge) + decentralized trust (permissioned\n"
      "ledger), the paper's closing proposal.\n");
  return rc;
}
