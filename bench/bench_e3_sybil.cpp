// E3 — Sybil attacks on open overlays (§II-B Problem 3).
// "Open networks where peers can assign their identities are prone to Sybil
// attacks ... the idea is to impersonate thousands of identifiers with a few
// powerful nodes." (Douceur; the KAD/BitTorrent-DHT attacks.)
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "net/network.hpp"
#include "overlay/kademlia.hpp"
#include "p2p/sybil.hpp"

using namespace decentnet;

namespace {

struct Row {
  double store_capture;   // fraction of new stores that land only on sybils
  double lookup_failure;  // fraction of post-attack lookups that fail
  std::uint64_t captured_rpcs;
};

Row run(std::size_t honest_n, std::size_t sybils, std::uint64_t seed,
        sim::ExperimentHarness& ex) {
  sim::Simulator simu(seed);
  ex.instrument(simu);
  net::Network netw(
      simu, std::make_unique<net::ConstantLatency>(sim::millis(40)),
      net::NetworkConfig{.expected_nodes = honest_n + sybils},
      &ex.metrics());
  overlay::KademliaConfig cfg;
  std::vector<std::unique_ptr<overlay::KademliaNode>> honest;
  for (std::size_t i = 0; i < honest_n; ++i) {
    honest.push_back(std::make_unique<overlay::KademliaNode>(
        netw, netw.new_node_id(), cfg));
  }
  honest[0]->join({});
  for (std::size_t i = 1; i < honest_n; ++i) {
    honest[i]->join({{honest[0]->id(), honest[0]->addr()}});
    if (i % 16 == 0) simu.run_until(simu.now() + sim::seconds(2));
  }
  simu.run_until(simu.now() + sim::minutes(1));

  Row row{0, 0, 0};
  const int kKeys = 20;
  sim::Rng rng(seed ^ 0x5B);
  int stores_captured = 0, lookups_failed = 0;
  for (int k = 0; k < kKeys; ++k) {
    const overlay::Key key = crypto::sha256("content-" + std::to_string(k));
    std::unique_ptr<p2p::SybilAttack> attack;
    if (sybils > 0) {
      p2p::SybilConfig scfg;
      scfg.count = sybils;
      attack = std::make_unique<p2p::SybilAttack>(netw, scfg, key, rng);
      attack->launch();
      std::vector<overlay::KademliaNode*> targets;
      for (auto& h : honest) targets.push_back(h.get());
      attack->infiltrate(targets, 4, rng);
      simu.run_until(simu.now() + sim::seconds(5));
    }
    // A user publishes under the (now contested) key...
    honest[1 + static_cast<std::size_t>(k) % (honest.size() - 1)]->store(
        key, "payload", [](std::size_t) {});
    simu.run_until(simu.now() + sim::seconds(30));
    // ...and another user tries to fetch it.
    bool found = false;
    honest[(3 + static_cast<std::size_t>(k) * 7) % honest.size()]->find_value(
        key, [&](overlay::LookupResult r) { found = r.found_value; });
    simu.run_until(simu.now() + sim::seconds(30));
    if (!found) ++lookups_failed;
    // Did any honest node end up holding the value?
    bool on_honest = false;
    for (const auto& h : honest) {
      if (h->storage().count(key) > 0) {
        on_honest = true;
        break;
      }
    }
    if (!on_honest) ++stores_captured;
    if (attack) row.captured_rpcs += attack->captured_requests();
  }
  row.store_capture = static_cast<double>(stores_captured) / kKeys;
  row.lookup_failure = static_cast<double>(lookups_failed) / kKeys;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bench::ExperimentHarness ex("E3_sybil", argc, argv, {.seed = 77});
  ex.describe(
      "E3: sybil capture of a Kademlia keyspace region",
      "self-assigned identifiers let an attacker park identities next to "
      "any key: new stores land on attacker nodes and vanish (the measured "
      "KAD/BT-DHT attacks)",
      "250 honest nodes; per key, mint N sybil ids sharing a 24-bit prefix "
      "with the key, infiltrate, then publish + fetch; 20 keys per row");

  for (const std::size_t sybils : {0u, 2u, 4u, 6u, 8u, 16u, 64u}) {
    const Row r = run(250, sybils, ex.seed(), ex);
    ex.add_row({{"sybils_per_key", std::uint64_t{sybils}},
                {"store_capture", bench::Value(r.store_capture, 2)},
                {"lookup_failure", bench::Value(r.lookup_failure, 2)},
                {"captured_rpcs", r.captured_rpcs}});
  }
  const int rc = ex.finish();
  std::printf(
      "\nA few dozen identities per key — trivially cheap, since identities\n"
      "are free — suffice to swallow most new publications in the region.\n"
      "This is the paper's Problem 3, and the defense (admission-controlled\n"
      "identity) is exactly what the permissioned MSP in E12 provides.\n");
  return rc;
}
