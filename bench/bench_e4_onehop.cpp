// E4 — One-hop overlays vs multi-hop DHTs (§II-B, citing Gupta/Liskov).
// "For networks between 10K and 100K it is possible to have full membership
// routing information and provide one-hop routing. If the overlay is
// relatively stable ... then O(1) routing and full membership is the right
// decision instead of maintaining routing tables and suffering multi-hop
// lookups." (The design cloud key-value stores adopted.)
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "net/network.hpp"
#include "overlay/chord.hpp"
#include "overlay/onehop.hpp"
#include "sim/metrics.hpp"

using namespace decentnet;

namespace {

struct Row {
  double lookup_p50_ms;
  double lookup_hops;
  double success;
  double maint_bytes_per_node_s;
};

Row run_chord(std::size_t n, bool churn, std::uint64_t seed,
              sim::ExperimentHarness& ex) {
  sim::Simulator simu(seed);
  ex.instrument(simu);
  net::Network netw(
      simu, std::make_unique<net::LogNormalLatency>(sim::millis(40), 0.3),
      net::NetworkConfig{.expected_nodes = n}, &ex.metrics());
  overlay::ChordConfig cfg;
  std::vector<std::unique_ptr<overlay::ChordNode>> nodes;
  for (std::size_t i = 0; i < n; ++i) {
    nodes.push_back(
        std::make_unique<overlay::ChordNode>(netw, netw.new_node_id(), cfg));
  }
  nodes[0]->create();
  for (std::size_t i = 1; i < n; ++i) {
    nodes[i]->join(nodes[0]->self());
    if (i % 8 == 0) simu.run_until(simu.now() + sim::seconds(20));
  }
  simu.run_until(simu.now() + sim::minutes(30));  // converge
  sim::Rng churn_rng(seed ^ 0xCC);
  if (churn) {
    // One membership change every 10 s: a random node flaps.
    simu.schedule_periodic(sim::seconds(10), sim::seconds(10), [&] {
      const std::size_t idx = 1 + churn_rng.uniform_int(n - 1);
      if (nodes[idx]->online()) {
        nodes[idx]->leave();
      } else {
        nodes[idx]->join(nodes[0]->self());
      }
    });
  }
  // Measure steady-state maintenance traffic over a window.
  const auto bytes_before = netw.bytes_sent();
  const auto t_before = simu.now();
  simu.run_until(simu.now() + sim::minutes(10));
  const double maint = static_cast<double>(netw.bytes_sent() - bytes_before) /
                       static_cast<double>(n) /
                       sim::to_seconds(simu.now() - t_before);
  sim::Histogram lat, hops;
  sim::Rng rng(seed ^ 0xC4);
  int ok = 0;
  const int kQueries = 100;
  for (int q = 0; q < kQueries; ++q) {
    std::size_t src_idx = rng.uniform_int(n);
    while (!nodes[src_idx]->online()) src_idx = rng.uniform_int(n);
    auto& src = *nodes[src_idx];
    bool done = false;
    src.lookup(rng.next(), [&](overlay::ChordLookupResult r) {
      done = true;
      if (r.ok) {
        ++ok;
        lat.record(sim::to_millis(r.elapsed));
        hops.record(static_cast<double>(r.hops));
      }
    });
    simu.run_until(simu.now() + sim::seconds(30));
    (void)done;
  }
  return Row{lat.percentile(50), hops.mean(),
             static_cast<double>(ok) / kQueries, maint};
}

Row run_onehop(std::size_t n, bool churn, std::uint64_t seed,
               sim::ExperimentHarness& ex) {
  sim::Simulator simu(seed);
  ex.instrument(simu);
  net::Network netw(
      simu, std::make_unique<net::LogNormalLatency>(sim::millis(40), 0.3),
      net::NetworkConfig{.expected_nodes = n}, &ex.metrics());
  overlay::OneHopConfig cfg;
  std::vector<std::unique_ptr<overlay::OneHopNode>> nodes;
  for (std::size_t i = 0; i < n; ++i) {
    nodes.push_back(
        std::make_unique<overlay::OneHopNode>(netw, netw.new_node_id(), cfg));
  }
  nodes[0]->create();
  for (std::size_t i = 1; i < n; ++i) {
    nodes[i]->join(nodes[0]->self());
    if (i % 16 == 0) simu.run_until(simu.now() + sim::seconds(5));
  }
  simu.run_until(simu.now() + sim::minutes(10));
  sim::Rng churn_rng(seed ^ 0xCC);
  if (churn) {
    simu.schedule_periodic(sim::seconds(10), sim::seconds(10), [&] {
      const std::size_t idx = 1 + churn_rng.uniform_int(n - 1);
      if (nodes[idx]->online()) {
        nodes[idx]->leave();  // graceful: departure event gossips
      } else {
        nodes[idx]->join(nodes[0]->self());
      }
    });
  }
  const auto bytes_before = netw.bytes_sent();
  const auto t_before = simu.now();
  simu.run_until(simu.now() + sim::minutes(10));
  const double maint = static_cast<double>(netw.bytes_sent() - bytes_before) /
                       static_cast<double>(n) /
                       sim::to_seconds(simu.now() - t_before);
  sim::Histogram lat, attempts;
  sim::Rng rng(seed ^ 0x14);
  int ok = 0;
  const int kQueries = 100;
  for (int q = 0; q < kQueries; ++q) {
    std::size_t src_idx = rng.uniform_int(n);
    while (!nodes[src_idx]->online()) src_idx = rng.uniform_int(n);
    auto& src = *nodes[src_idx];
    bool done = false;
    src.lookup(rng.next(), [&](overlay::OneHopLookupResult r) {
      done = true;
      if (r.ok) {
        ++ok;
        lat.record(sim::to_millis(r.elapsed));
        attempts.record(static_cast<double>(r.attempts));
      }
    });
    simu.run_until(simu.now() + sim::seconds(30));
    (void)done;
  }
  return Row{lat.percentile(50), attempts.mean(),
             static_cast<double>(ok) / kQueries, maint};
}

}  // namespace

int main(int argc, char** argv) {
  bench::ExperimentHarness ex("E4_onehop", argc, argv, {.seed = 31});
  ex.describe(
      "E4: one-hop full membership vs Chord multi-hop routing",
      "for stable populations up to ~100K, keeping the full membership "
      "table costs modest maintenance bandwidth and buys O(1) lookups — "
      "multi-hop DHTs only win when churn makes full membership untenable",
      "same WAN (40 ms median); Chord vs one-hop at 200/500 nodes; "
      "maintenance bytes measured over a quiet 10-minute window, then 100 "
      "lookups");

  for (const std::size_t n : {200u, 500u}) {
    for (const bool churn : {false, true}) {
      const Row c = run_chord(n, churn, ex.seed(), ex);
      ex.add_row({{"overlay", "Chord"},
                  {"nodes", std::uint64_t{n}},
                  {"churn", churn ? "6/min" : "none"},
                  {"p50_lookup_ms", bench::Value(c.lookup_p50_ms, 0)},
                  {"hops_or_attempts", bench::Value(c.lookup_hops, 1)},
                  {"success", bench::Value(c.success, 2)},
                  {"maint_bytes_node_s",
                   bench::Value(c.maint_bytes_per_node_s, 1)}});
      const Row o = run_onehop(n, churn, ex.seed() + 1, ex);
      ex.add_row({{"overlay", "One-hop"},
                  {"nodes", std::uint64_t{n}},
                  {"churn", churn ? "6/min" : "none"},
                  {"p50_lookup_ms", bench::Value(o.lookup_p50_ms, 0)},
                  {"hops_or_attempts", bench::Value(o.lookup_hops, 2)},
                  {"success", bench::Value(o.success, 2)},
                  {"maint_bytes_node_s",
                   bench::Value(o.maint_bytes_per_node_s, 1)}});
    }
  }
  const int rc = ex.finish();
  std::printf(
      "\nOne-hop answers in a single RTT where Chord pays ~log2(n) RTTs; the\n"
      "price is membership gossip that grows with churn x n. For a stable\n"
      "corporate/cloud population that trade is obviously right — which is\n"
      "how Dynamo-style stores ended the DHT's multi-hop era.\n");
  return rc;
}
