// E12 — Channel-scoped consensus vs global broadcast (§IV).
// "One distinguishing aspect of Hyperledger Fabric is that consensus or
// replication can be configured between a subset of the nodes of the
// network, unlike traditional broadcast networks (like Bitcoin or Ethereum)
// where all nodes must participate in all transactions."
#include "bench_util.hpp"
#include "core/scenarios.hpp"

using namespace decentnet;

int main(int argc, char** argv) {
  bench::ExperimentHarness ex("E12_channels", argc, argv, {.seed = 42});
  ex.describe(
      "E12: one global channel vs partitioned channels",
      "scoping consensus to the interested subset (channels) multiplies "
      "aggregate throughput and removes unrelated parties from the "
      "endorsement path",
      "8 organizations; compare one channel spanning all orgs (5-of-8 "
      "endorsement) with 2/4 independent channels (2-of-2 endorsement "
      "each); Raft ordering throughout, identical offered load per org");

  auto run_layout = [&](std::size_t channels, std::size_t orgs_per_channel,
                        std::size_t required, const std::string& label) {
    double agg_tps = 0;
    double p50 = 0, p99 = 0;
    std::uint64_t conflicts = 0;
    for (std::size_t c = 0; c < channels; ++c) {
      core::FabricScenarioConfig cfg;
      cfg.orgs = orgs_per_channel;
      cfg.required_endorsements = required;
      cfg.orderer = core::OrdererKind::Raft;
      cfg.orderer_nodes = 3;
      cfg.clients = 4;
      cfg.tx_rate_per_sec = 640.0 / static_cast<double>(channels);
      cfg.block_max_txs = 64;
      cfg.block_timeout = sim::millis(100);
      cfg.common.duration = sim::seconds(30);
      cfg.common.seed = ex.seed() + c;
      const auto r = core::run_fabric_scenario(cfg);
      agg_tps += r.throughput_tps;
      p50 += r.latency_p50_ms;
      p99 += r.latency_p99_ms;
      conflicts += r.mvcc_conflicts;
    }
    (void)conflicts;
    // Each org's peer validates every transaction in its own channel only.
    const double per_org_validate =
        agg_tps / static_cast<double>(channels);
    ex.add_row({{"layout", label},
                {"channels", std::uint64_t{channels}},
                {"endorsement", std::to_string(required) + "-of-" +
                                    std::to_string(orgs_per_channel)},
                {"agg_tps", bench::Value(agg_tps, 0)},
                {"validate_tps_per_org", bench::Value(per_org_validate, 0)},
                {"endorse_msgs_per_tx", std::uint64_t{required}},
                {"p50_ms",
                 bench::Value(p50 / static_cast<double>(channels), 1)},
                {"p99_ms",
                 bench::Value(p99 / static_cast<double>(channels), 1)}});
  };

  run_layout(1, 8, 5, "global channel (everyone validates)");
  run_layout(2, 4, 3, "two consortium channels");
  run_layout(4, 2, 2, "four bilateral channels");
  const int rc = ex.finish();
  std::printf(
      "\nAll layouts keep up with the offered load, but the cost structure\n"
      "differs: in the global channel every org validates all 640 tps and\n"
      "each tx needs 5 endorsements; four bilateral channels cut per-org\n"
      "validation 4x and endorsement fan-out to 2 — consensus scoped 'between\n"
      "a subset of the nodes', the architectural escape from 'all nodes\n"
      "validate all transactions' that permissionless broadcast cannot take.\n");
  return rc;
}
