// E22 — Transport-model ablation: what byte-accurate links add (§III).
//
// The paper's throughput/latency arguments lean on block propagation being
// slow relative to block intervals. E10 showed the fork consequences with a
// latency-only mesh; this experiment asks how much of real-world propagation
// delay is *bandwidth*, not distance. An inv/getdata block relay (Bitcoin's
// 2013 protocol) over a Bitcoin-like random mesh is swept across block sizes
// and link tiers under the three transport modes (Latency / Bandwidth /
// Tcp), and the bandwidth run at 230 KB blocks is cross-checked against
// Decker & Wattenhofer's 2013 measurement of the live Bitcoin network
// (median 6.5 s, 90th percentile ~26 s) — the dataset discrete-event
// simulators like BlockSim validate against. A ±20% agreement band on
// t50/t90 is computed in the bench and recorded in the JSON artifact.
#include <algorithm>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "net/latency.hpp"
#include "net/network.hpp"
#include "net/topology.hpp"
#include "net/transport.hpp"
#include "sim/metrics.hpp"
#include "sim/sharding.hpp"
#include "sim/telemetry.hpp"

using namespace decentnet;

namespace {

// 2013-era access-link tiers. The mix in pick_tier() plus per-byte
// validation cost are the calibration knobs; see EXPERIMENTS.md for the
// resulting fit against Decker & Wattenhofer. The reachable relay backbone
// was mostly hosted/cable nodes; the measured heavy tail comes from a
// straggler minority (Tor exits, congested or overseas residential lines)
// that receives late but, announcing last, never carries the wave.
struct Tier {
  const char* name;
  double up_bps;    // bytes/sec
  double down_bps;  // bytes/sec
};
constexpr Tier kFiber{"fiber", 100e6 / 8, 100e6 / 8};
constexpr Tier kCable{"cable", 8e6 / 8, 50e6 / 8};
constexpr Tier kDsl{"dsl", 1e6 / 8, 8e6 / 8};
constexpr Tier kSlow{"slow", 0.08e6 / 8, 0.08e6 / 8};

// Block validation cost per byte before a node relays (signature checks +
// UTXO lookups dominated 2013-era propagation alongside transmission).
constexpr double kVerifyUsPerByte = 1.2;

// Decker & Wattenhofer 2013 (P2P'13), measured on the live network at the
// then-average ~230 KB block: median 6.5 s, 90th percentile ~26 s.
constexpr double kDwBlockBytes = 230'000;
constexpr double kDwT50Sec = 6.5;
constexpr double kDwT90Sec = 26.0;

const Tier& pick_tier(sim::Rng& rng) {
  const std::uint64_t r = rng.uniform_int(100);
  if (r < 20) return kFiber;
  if (r < 73) return kCable;
  if (r < 88) return kDsl;
  return kSlow;
}

struct Params {
  std::size_t n = 1200;
  std::size_t degree = 8;  // edges added per node; mean adjacency ~2x
  std::uint64_t block_bytes = 230'000;
  net::TransportMode mode = net::TransportMode::Bandwidth;
  std::uint64_t queue_bytes = 0;          // 0 = unbounded sender queue
  const Tier* uniform_tier = nullptr;     // nullptr = 2013 mix
  std::uint64_t seed = 22;
};

// Bitcoin's 2013 relay protocol, as Decker & Wattenhofer describe it: a
// node announces a block with a tiny `inv`, peers that lack it answer
// `getdata`, and only then does the full block cross the link. The block
// therefore crosses each link at most once per request — the redundancy of
// a naive flood is in the 61-byte control messages, not the 230 KB payload.
enum WireKind : int { kInv = 1, kGetData = 2, kBlock = 3 };
constexpr std::uint64_t kCtrlBytes = 61;  // 24 B header + 37 B inv vector

/// Inv/getdata block relay: on first (verified) receipt, announce to every
/// neighbor except the provider. A requester whose block copy is lost to
/// queue overflow re-requests from the next announcing peer after a
/// timeout, so bounded-queue runs still converge.
class RelayNode final : public net::Host {
 public:
  RelayNode(net::Network& net, sim::Simulator& sim, net::NodeId self)
      : net_(net), sim_(sim), self_(self) {
    net_.attach(self_, this);
  }

  std::vector<net::NodeId> neighbors;
  std::function<void(sim::SimTime)> on_first;

  void originate(std::uint64_t block_bytes) {
    block_bytes_ = block_bytes;
    have_ = true;
    if (on_first) on_first(sim_.now());
    for (const auto& nb : neighbors) net_.send(self_, nb, kInv, kCtrlBytes);
  }

  void handle_message(const net::Message& msg) override {
    switch (net::payload_as<int>(msg)) {
      case kInv: {
        if (have_) return;
        providers_.push_back(msg.from);
        if (!waiting_) {
          request_next();
        } else if (sim_.now() - wait_since_ >= kImpatience) {
          // A fresh announcement after a long wait: fetch from the new
          // announcer too instead of staying head-of-line blocked behind a
          // slow provider. Caps the per-hop stall a slow link can cause.
          wait_since_ = sim_.now();
          net_.send(self_, msg.from, kGetData, kCtrlBytes);
        }
        return;
      }
      case kGetData: {
        if (have_) net_.send(self_, msg.from, kBlock, block_bytes_);
        return;
      }
      case kBlock: {
        if (have_) return;
        have_ = true;
        block_bytes_ = msg.size_bytes;
        if (on_first) on_first(sim_.now());
        const net::NodeId from = msg.from;
        const auto verify = static_cast<sim::SimDuration>(
            static_cast<double>(msg.size_bytes) * kVerifyUsPerByte);
        sim_.post(sim_.now() + verify, [this, from] {
          for (const auto& nb : neighbors) {
            if (nb == from) continue;
            net_.send(self_, nb, kInv, kCtrlBytes);
          }
        });
        return;
      }
    }
  }

  bool seen() const { return have_; }

 private:
  void request_next() {
    if (have_ || providers_.empty()) {
      waiting_ = false;
      return;
    }
    waiting_ = true;
    wait_since_ = sim_.now();
    net_.send(self_, providers_[next_provider_++ % providers_.size()],
              kGetData, kCtrlBytes);
    sim_.post(sim_.now() + kRetryAfter, [this] { request_next(); });
  }

  // Long enough that a slow-tier download (230 KB at 0.08 Mbit ~ 23 s)
  // usually completes before the requester gives up on its provider.
  static constexpr sim::SimDuration kRetryAfter = sim::seconds(20);
  static constexpr sim::SimDuration kImpatience = sim::seconds(2);

  net::Network& net_;
  sim::Simulator& sim_;
  net::NodeId self_;
  std::uint64_t block_bytes_ = 0;
  std::vector<net::NodeId> providers_;  // peers that have announced
  std::size_t next_provider_ = 0;
  sim::SimTime wait_since_ = 0;  // when the outstanding getdata went out
  bool have_ = false;
  bool waiting_ = false;  // a getdata is outstanding (retry scheduled)
};

struct Row {
  double coverage;
  std::uint64_t t50_us;
  std::uint64_t t90_us;
  std::uint64_t dropped;  // copies lost to sender-queue overflow
  std::uint64_t events;
};

net::TransportConfig make_transport(const Params& p) {
  net::TransportConfig t;
  t.mode = p.mode;
  const Tier& def = p.uniform_tier ? *p.uniform_tier : kCable;
  t.link = net::LinkSpec{def.up_bps, def.down_bps, p.queue_bytes};
  return t;
}

Row summarize(std::vector<sim::SimTime>& cover_times, sim::SimTime t0,
              std::size_t n) {
  Row row{};
  std::sort(cover_times.begin(), cover_times.end());
  const std::size_t pop = cover_times.size();
  row.coverage = static_cast<double>(pop) / static_cast<double>(n);
  if (pop > 0) {
    const std::size_t k50 = (pop + 1) / 2;            // ceil(0.5 * pop)
    const std::size_t k90 = (pop * 9 + 9) / 10;       // ceil(0.9 * pop)
    row.t50_us = static_cast<std::uint64_t>(cover_times[k50 - 1] - t0);
    row.t90_us = static_cast<std::uint64_t>(cover_times[k90 - 1] - t0);
  }
  return row;
}

Row run(const Params& p, sim::ExperimentHarness& ex) {
  sim::Simulator simu(p.seed);
  ex.instrument(simu);
  net::Network netw(
      simu, std::make_unique<net::LogNormalLatency>(sim::millis(50), 0.4),
      net::NetworkConfig{.transport = make_transport(p),
                         .expected_nodes = p.n,
                         .track_spans = true},
      &ex.metrics());
  const std::uint64_t drops_before =
      ex.metrics().counter("net/queue_dropped").value();

  sim::Rng rng(p.seed ^ 0x7157);
  const net::AdjacencyList adj =
      net::TopologySpec{.kind = net::TopologySpec::Kind::Random,
                        .nodes = p.n,
                        .degree = p.degree}
          .build(rng);
  std::vector<net::NodeId> addrs;
  for (std::size_t i = 0; i < p.n; ++i) addrs.push_back(netw.new_node_id());
  std::vector<std::unique_ptr<RelayNode>> nodes;
  std::vector<sim::SimTime> cover_times;
  // Blocks originate at miners, which were well-provisioned: pick the first
  // fiber-tier node as origin rather than an arbitrary (possibly straggler)
  // one — a slow-tier origin serializes its first upload for ~18 s and
  // shifts the whole distribution by a seed lottery.
  std::size_t origin = 0;
  for (std::size_t i = 0; i < p.n; ++i) {
    const Tier& tier = p.uniform_tier ? *p.uniform_tier : pick_tier(rng);
    if (origin == 0 && &tier == &kFiber) origin = i;
    netw.set_link(addrs[i],
                  net::LinkSpec{tier.up_bps, tier.down_bps, p.queue_bytes});
    nodes.push_back(std::make_unique<RelayNode>(netw, simu, addrs[i]));
    for (const auto j : adj[i]) nodes.back()->neighbors.push_back(addrs[j]);
    nodes.back()->on_first = [&cover_times, &simu](sim::SimTime) {
      cover_times.push_back(simu.now());
    };
  }
  // --telemetry: network rates/transport gauges plus protocol health (how
  // many nodes hold the block, the origin's congestion window). Registered
  // after instrument() because attaching resets the series registry.
  if (sim::Telemetry* const tel = ex.telemetry()) {
    netw.register_telemetry(*tel);
    const std::vector<sim::SimTime>* const cov = &cover_times;
    tel->add_gauge("e22/covered", 0, [cov](sim::SimTime) {
      return static_cast<double>(cov->size());
    });
    const net::Transport* const tx = &netw.transport();
    const std::uint32_t oidx = netw.node_index(addrs[origin]);
    tel->add_gauge("e22/origin_cwnd_bytes", 0, [tx, oidx](sim::SimTime) {
      return tx->cwnd_bytes(oidx);
    });
  }
  const sim::SimTime t0 = sim::millis(1);
  simu.post(t0, [&, origin] { nodes[origin]->originate(p.block_bytes); });
  simu.run_until(t0 + sim::seconds(240));

  Row row = summarize(cover_times, t0, p.n);
  row.dropped =
      ex.metrics().counter("net/queue_dropped").value() - drops_before;
  row.events = simu.total_events_processed();
  return row;
}

/// Sharded counterpart (--sim-shards S): the same relay on a ShardedKernel.
/// All transport state is sender-side and single-writer per shard, so the
/// artifact is byte-identical at any --sim-threads. The 10 ms latency floor
/// is the kernel's lookahead window.
Row run_sharded(const Params& p, std::size_t shards, std::size_t threads,
                sim::ExperimentHarness& ex) {
  sim::ShardedKernel kernel(p.seed, shards);
  ex.instrument(kernel);
  net::Network netw(
      kernel.shard(0),
      std::make_unique<net::LogNormalLatency>(sim::millis(50), 0.4,
                                              sim::millis(10)),
      net::NetworkConfig{.transport = make_transport(p),
                         .expected_nodes = p.n,
                         .track_spans = true},
      &ex.metrics());
  netw.enable_sharding(kernel);

  sim::Rng rng(p.seed ^ 0x7157);
  const net::AdjacencyList adj =
      net::TopologySpec{.kind = net::TopologySpec::Kind::Random,
                        .nodes = p.n,
                        .degree = p.degree}
          .build(rng);
  std::vector<net::NodeId> addrs;
  for (std::size_t i = 0; i < p.n; ++i) addrs.push_back(netw.new_node_id());
  for (std::size_t i = 0; i < p.n; ++i) netw.register_node(addrs[i]);
  // First-receipt times per receiving shard — single writer each.
  std::vector<std::vector<sim::SimTime>> times(shards);
  std::vector<std::unique_ptr<RelayNode>> nodes;
  std::size_t origin = 0;  // first fiber-tier node, as in run()
  for (std::size_t i = 0; i < p.n; ++i) {
    const Tier& tier = p.uniform_tier ? *p.uniform_tier : pick_tier(rng);
    if (origin == 0 && &tier == &kFiber) origin = i;
    netw.set_link(addrs[i],
                  net::LinkSpec{tier.up_bps, tier.down_bps, p.queue_bytes});
    sim::Simulator* nsim = &netw.simulator_for(addrs[i]);
    nodes.push_back(std::make_unique<RelayNode>(netw, *nsim, addrs[i]));
    for (const auto j : adj[i]) nodes.back()->neighbors.push_back(addrs[j]);
    const std::size_t sh = kernel.shard_of(addrs[i].value);
    nodes.back()->on_first = [&times, sh](sim::SimTime at) {
      times[sh].push_back(at);
    };
  }
  // Same health series as run(), but coverage is per receiving shard (the
  // vectors are single-writer and the driver samples at barriers).
  if (sim::Telemetry* const tel = ex.telemetry()) {
    netw.register_telemetry(*tel);
    for (std::size_t sh = 0; sh < shards; ++sh) {
      const std::vector<sim::SimTime>* const cov = &times[sh];
      tel->add_gauge("e22/covered", static_cast<std::uint32_t>(sh),
                     [cov](sim::SimTime) {
                       return static_cast<double>(cov->size());
                     });
    }
    const net::Transport* const tx = &netw.transport();
    const std::uint32_t oidx = netw.node_index(addrs[origin]);
    tel->add_gauge("e22/origin_cwnd_bytes", 0, [tx, oidx](sim::SimTime) {
      return tx->cwnd_bytes(oidx);
    });
  }
  const sim::SimTime t0 = sim::millis(1);
  netw.simulator_for(addrs[origin])
      .post(t0, [&, origin] { nodes[origin]->originate(p.block_bytes); });
  const std::uint64_t drops_before =
      ex.metrics().counter("net/queue_dropped").value();
  kernel.run_until(t0 + sim::seconds(240), threads);
  kernel.merge_metrics_into(ex.metrics());

  std::vector<sim::SimTime> cover_times;
  for (std::size_t sh = 0; sh < shards; ++sh) {
    cover_times.insert(cover_times.end(), times[sh].begin(), times[sh].end());
  }
  Row row = summarize(cover_times, t0, p.n);
  row.dropped =
      ex.metrics().counter("net/queue_dropped").value() - drops_before;
  row.events = kernel.total_events_processed();
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bench::ExperimentHarness ex("E22_transport", argc, argv,
                              {.seed = 22, .shard_aware = true});
  ex.describe(
      "E22: block propagation under byte-accurate transport",
      "(model-validation check) with per-link serialization, FIFO queueing "
      "and 2013-era link tiers, inv/getdata relay of a 230 KB block matches "
      "Decker & Wattenhofer's measured Bitcoin t50/t90 within 20%; a "
      "latency-only mesh underestimates it by an order of magnitude",
      "inv/getdata block relay over a ~1200-node random mesh; sweep "
      "block size and link tier under Latency/Bandwidth/Tcp transport");

  // timings_in_json=0 demotes the wall-clock/events-per-sec/peak-RSS cells
  // to table-only so BENCH_E22_transport.json is byte-identical across runs,
  // --jobs and --sim-threads (the determinism CI checks); the default 1
  // records them for tools/perf_gate.py.
  const bool json_timings = ex.cli_param_u64("timings_in_json", 1) != 0;
  const std::size_t shards = ex.sim_shards();
  const std::size_t threads = ex.sim_threads();
  if (shards > 1) ex.set_param("sim_shards", std::uint64_t{shards});
  auto run_one = [&](const Params& p) {
    return shards > 1 ? run_sharded(p, shards, threads, ex) : run(p, ex);
  };

  // Sweep 1: block size under the 2013 tier mix. The 230 KB row is the
  // calibration point against Decker & Wattenhofer's live measurements.
  bool calibrated = false;
  for (const std::uint64_t kb : {1u, 50u, 230u, 500u, 1000u}) {
    const bench::WallClock wall;
    Params p;
    p.block_bytes = kb * 1000;
    p.seed = ex.seed();
    const Row r = run_one(p);
    std::vector<std::pair<std::string, bench::Value>> row{
        {"sweep", "block_size"},
        {"block_kb", kb},
        {"links", "2013 mix"},
        {"mode", net::transport_mode_name(net::TransportMode::Bandwidth)},
        {"coverage", bench::Value(r.coverage, 3)},
        {"t50_s", bench::Value(r.t50_us / 1e6, 2)},
        {"t90_s", bench::Value(r.t90_us / 1e6, 2)}};
    if (static_cast<double>(p.block_bytes) == kDwBlockBytes) {
      const double t50 = r.t50_us / 1e6;
      const double t90 = r.t90_us / 1e6;
      const bool ok = std::abs(t50 - kDwT50Sec) / kDwT50Sec <= 0.20 &&
                      std::abs(t90 - kDwT90Sec) / kDwT90Sec <= 0.20;
      calibrated = ok;
      row.push_back({"dw2013_t50_s", bench::Value(kDwT50Sec, 1)});
      row.push_back({"dw2013_t90_s", bench::Value(kDwT90Sec, 1)});
      row.push_back({"within_20pct", ok ? "yes" : "no"});
    }
    bench::append_timing_cells(row, wall, r.events, json_timings);
    ex.add_row(std::move(row));
  }

  // Sweep 2: uniform link tier at the 230 KB calibration size.
  for (const Tier* tier : {&kDsl, &kCable, &kFiber}) {
    const bench::WallClock wall;
    Params p;
    p.uniform_tier = tier;
    p.seed = ex.seed() + 1;
    const Row r = run_one(p);
    std::vector<std::pair<std::string, bench::Value>> row{
        {"sweep", "link_tier"},
        {"block_kb", std::uint64_t{230}},
        {"links", tier->name},
        {"mode", net::transport_mode_name(net::TransportMode::Bandwidth)},
        {"coverage", bench::Value(r.coverage, 3)},
        {"t50_s", bench::Value(r.t50_us / 1e6, 2)},
        {"t90_s", bench::Value(r.t90_us / 1e6, 2)}};
    bench::append_timing_cells(row, wall, r.events, json_timings);
    ex.add_row(std::move(row));
  }

  // Sweep 3: transport mode at the calibration point. Latency-only shows
  // what E10-style meshes assume; bounded queues show overflow drops; Tcp
  // adds slow start + AIMD on top of the same links.
  struct ModeCase {
    const char* label;
    net::TransportMode mode;
    std::uint64_t queue_bytes;
  };
  const ModeCase cases[] = {
      {"latency-only", net::TransportMode::Latency, 0},
      {"bandwidth", net::TransportMode::Bandwidth, 0},
      {"bandwidth+queue", net::TransportMode::Bandwidth, 1'000'000},
      {"tcp+queue", net::TransportMode::Tcp, 1'000'000},
  };
  for (const ModeCase& mc : cases) {
    const bench::WallClock wall;
    Params p;
    p.mode = mc.mode;
    p.queue_bytes = mc.queue_bytes;
    p.seed = ex.seed() + 2;
    const Row r = run_one(p);
    std::vector<std::pair<std::string, bench::Value>> row{
        {"sweep", "mode"},
        {"block_kb", std::uint64_t{230}},
        {"links", "2013 mix"},
        {"mode", mc.label},
        {"coverage", bench::Value(r.coverage, 3)},
        {"t50_s", bench::Value(r.t50_us / 1e6, 2)},
        {"t90_s", bench::Value(r.t90_us / 1e6, 2)},
        {"queue_dropped", r.dropped}};
    bench::append_timing_cells(row, wall, r.events, json_timings);
    ex.add_row(std::move(row));
  }

  const int rc = ex.finish();
  std::printf(
      "\nWith real link capacities a 230 KB block takes seconds to cross the\n"
      "mesh (%s Decker & Wattenhofer's 2013 measurements within 20%%); a\n"
      "latency-only model delivers it in under a second. Propagation delay\n"
      "— the root of E10's stale rate — is a bandwidth phenomenon, and any\n"
      "throughput argument built on latency-only meshes understates it.\n",
      calibrated ? "matching" : "missing");
  return rc;
}
