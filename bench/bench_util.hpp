// Shared include for the experiment benches: every bench runs on the
// sim::ExperimentHarness (banner, results table, BENCH_<id>.json artifact,
// --seed/--json/--trace CLI). See src/sim/experiment.hpp for the canonical
// bench shape.
//
// Also home to the throughput instrumentation the perf-gated benches share
// (WallClock, peak_rss_mb, append_timing_cells) so every bench reports
// wall-clock, events/sec and peak RSS with identical names, units and
// rounding — tools/perf_gate.py keys on exactly these cells.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "sim/experiment.hpp"

namespace decentnet::bench {

using decentnet::sim::ExperimentHarness;
using decentnet::sim::Value;

/// Process-wide peak resident set in MB. Monotone for the process lifetime
/// (sweep points run as threads of one process at any --jobs), so the
/// largest point of a --jobs 1 sweep reports the sweep's true high-water
/// mark; with --jobs > 1 concurrent points share the number — use --jobs 1
/// when the RSS cell matters.
inline double peak_rss_mb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru {};
  getrusage(RUSAGE_SELF, &ru);
#if defined(__APPLE__)
  return static_cast<double>(ru.ru_maxrss) / (1024.0 * 1024.0);
#else
  return static_cast<double>(ru.ru_maxrss) / 1024.0;  // Linux: KB
#endif
#else
  return 0.0;
#endif
}

/// Wall-clock stopwatch; construct at point start, read at the end.
struct WallClock {
  std::chrono::steady_clock::time_point t0 = std::chrono::steady_clock::now();
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
  }
};

/// Append the standard throughput triplet — wall_s, events_per_sec,
/// peak_rss_mb — to a row under construction. With in_json false (the
/// default) the cells are Value::timing: printed in the results table but
/// excluded from the JSON artifact, so a bench keeps its byte-identical
/// determinism contract while still showing throughput interactively.
/// Perf-gated benches pass in_json true (E20's timings_in_json knob) to
/// persist them for tools/perf_gate.py.
inline void append_timing_cells(
    std::vector<std::pair<std::string, Value>>& row, const WallClock& wall,
    std::uint64_t events, bool in_json = false) {
  const double wall_s = wall.seconds();
  const double eps = static_cast<double>(events) / std::max(wall_s, 1e-9);
  auto cell = [&](double v, int prec) {
    return in_json ? Value(v, prec) : Value::timing(v, prec);
  };
  row.emplace_back("wall_s", cell(wall_s, 2));
  row.emplace_back("events_per_sec", cell(eps, 0));
  row.emplace_back("peak_rss_mb", cell(peak_rss_mb(), 1));
}

}  // namespace decentnet::bench
