// Shared helpers for the experiment benches: consistent headers that state
// the paper claim being regenerated, plus the table printer.
#pragma once

#include <cstdio>
#include <string>

#include "sim/table.hpp"

namespace decentnet::bench {

/// Print the experiment banner: id, claim, and what the bench sweeps.
inline void banner(const std::string& id, const std::string& claim,
                   const std::string& method) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", id.c_str());
  std::printf("Paper claim : %s\n", claim.c_str());
  std::printf("This bench  : %s\n", method.c_str());
  std::printf("================================================================\n");
}

using decentnet::sim::Table;

}  // namespace decentnet::bench
