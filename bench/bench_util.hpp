// Shared include for the experiment benches: every bench runs on the
// sim::ExperimentHarness (banner, results table, BENCH_<id>.json artifact,
// --seed/--json/--trace CLI). See src/sim/experiment.hpp for the canonical
// bench shape.
#pragma once

#include <cstdio>

#include "sim/experiment.hpp"

namespace decentnet::bench {

using decentnet::sim::ExperimentHarness;
using decentnet::sim::Value;

}  // namespace decentnet::bench
