// E7 — Mining centralization (§III-C Problem 1).
// "In 2013 six mining pools controlled 75% of overall Bitcoin hashing power.
// Nowadays it is almost impossible for a normal user to mine bitcoins with a
// normal desktop computer."
#include "bench_util.hpp"
#include "chain/economics.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"

using namespace decentnet;

int main(int argc, char** argv) {
  bench::ExperimentHarness ex("E7_pools", argc, argv, {.seed = 2013});
  ex.describe(
      "E7: hash-power concentration under economies of scale",
      "strong economic incentives attract industrial players; scale "
      "advantages (cheap electricity, wholesale ASICs) concentrate hash "
      "power into a handful of farms — six pools held 75% in 2013",
      "reinvestment dynamics over 2000 miners, 500 rounds; sweep the "
      "scale-economy exponent and report Gini / Nakamoto coefficient / "
      "top-6 share of the final distribution");

  for (const double scale : {0.0, 0.05, 0.10, 0.15, 0.20, 0.30}) {
    chain::PoolSimConfig cfg;
    cfg.scale_exponent = scale;
    sim::Rng rng(ex.seed());
    const auto shares = chain::simulate_pool_concentration(cfg, rng);
    std::size_t active = 0;
    for (double s : shares) {
      if (s > 0) ++active;
    }
    ex.add_row(
        {{"scale_exponent", bench::Value(scale, 2)},
         {"gini", bench::Value(sim::gini(shares), 3)},
         {"nakamoto_coeff",
          std::uint64_t{sim::nakamoto_coefficient(shares)}},
         {"top6_share", bench::Value(sim::top_k_share(shares, 6), 3)},
         {"entropy_bits", bench::Value(sim::shannon_entropy(shares), 2)},
         {"active_miners", std::uint64_t{active}}});
  }
  const int rc = ex.finish();
  std::printf(
      "\nReading: with no scale advantage the initial skew persists but the\n"
      "network stays wide; each increment of scale advantage collapses the\n"
      "Nakamoto coefficient toward single digits and pushes the top-6 share\n"
      "toward (and past) the 75%% the paper reports for 2013.\n");
  return rc;
}
