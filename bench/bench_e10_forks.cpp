// E10 — Fork/stale rate vs block interval (§III-A).
// "The difficulty target is periodically adjusted in such a way that a new
// block is generated every 10 minutes ... such ephemeral forks quickly
// disappear" — the 10-minute interval buys fork-safety from propagation
// delay; shrinking it (to chase throughput) buys forks instead.
#include "bench_util.hpp"
#include "core/scenarios.hpp"

using namespace decentnet;

int main(int argc, char** argv) {
  bench::ExperimentHarness ex("E10_forks", argc, argv, {.seed = 42});
  ex.describe(
      "E10: stale/fork rate vs block interval and propagation delay",
      "ephemeral forks appear when blocks are found faster than they "
      "propagate; Bitcoin's 10-minute interval keeps the stale rate ~1%, "
      "cutting the interval (or growing latency) forks the chain",
      "PoW mesh of 30 nodes; sweep target block interval at two median "
      "one-way latencies; stale rate = stale blocks / all blocks");

  for (const auto latency_ms : {80, 400}) {
    for (const double interval_s : {2.0, 10.0, 60.0, 600.0}) {
      core::PowScenarioConfig cfg;
      cfg.params.retarget_window = 0;
      cfg.params.initial_difficulty = 1e6;
      cfg.params.target_block_interval = sim::seconds(interval_s);
      cfg.total_hashrate = 1e6 / interval_s;
      cfg.nodes = 24;
      cfg.degree = 5;
      cfg.miners = 8;
      cfg.wallets = 4;
      cfg.tx_rate_per_sec = 0;  // isolate the fork dynamics
      cfg.common.latency = sim::millis(latency_ms);
      // Enough blocks per row for a stable estimate.
      cfg.common.duration = sim::seconds(interval_s * 150);
      cfg.common.track_spans = true;  // block relay-tree depth histogram
      const auto r = core::run_pow_scenario(cfg, ex);
      ex.add_row({{"latency_ms", std::int64_t{latency_ms}},
                  {"block_interval_s", bench::Value(interval_s, 0)},
                  {"blocks", r.blocks_on_chain},
                  {"stale_blocks", r.stale_blocks},
                  {"stale_rate", bench::Value(r.stale_rate, 4)},
                  {"mean_reorg_depth",
                   bench::Value(r.mean_reorg_depth, 2)}});
    }
  }
  const int rc = ex.finish();
  std::printf(
      "\nAt 600 s the stale rate is negligible at either latency; at 2-5 s\n"
      "intervals the chain wastes a sizable fraction of its work on forks —\n"
      "and doubling latency roughly doubles the damage. This is why 'just\n"
      "make blocks faster' does not fix E5's throughput ceiling.\n");
  return rc;
}
