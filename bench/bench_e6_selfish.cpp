// E6 — Selfish mining (Eyal & Sirer, paper ref [30]).
// "They present an attack where a minority colluding pool can obtain more
// revenue than the pool's fair share."
#include "bench_util.hpp"
#include "chain/attacks.hpp"
#include "sim/rng.hpp"

using namespace decentnet;

int main() {
  bench::banner(
      "E6: selfish mining revenue vs pool size",
      "a minority pool (alpha > (1-gamma)/(3-2gamma)) earns more than its "
      "fair share by withholding blocks [Eyal & Sirer]",
      "Monte-Carlo of the withholding state machine (2M block events per "
      "point) against the closed-form revenue; gamma = tie-break share");

  for (const double gamma : {0.0, 0.5, 1.0}) {
    bench::Table t("selfish mining, gamma = " + sim::Table::num(gamma, 1) +
                   "  (threshold alpha = " +
                   sim::Table::num(chain::selfish_threshold(gamma), 3) + ")");
    t.set_header({"alpha", "fair_share", "simulated", "analytic", "stale_rate",
                  "profitable"});
    for (const double alpha :
         {0.10, 0.20, 0.25, 0.30, 1.0 / 3.0, 0.35, 0.40, 0.45}) {
      sim::Rng rng(42);
      const auto out =
          chain::simulate_selfish_mining(alpha, gamma, 2'000'000, rng);
      const double analytic = chain::selfish_revenue_analytic(alpha, gamma);
      t.add_row({sim::Table::num(alpha, 3), sim::Table::num(alpha, 3),
                 sim::Table::num(out.pool_revenue_share(), 4),
                 sim::Table::num(analytic, 4),
                 sim::Table::num(out.stale_rate(), 4),
                 out.pool_revenue_share() > alpha ? "YES" : "no"});
    }
    t.print();
  }
  return 0;
}
