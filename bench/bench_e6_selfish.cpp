// E6 — Selfish mining (Eyal & Sirer, paper ref [30]).
// "They present an attack where a minority colluding pool can obtain more
// revenue than the pool's fair share."
#include "bench_util.hpp"
#include "chain/attacks.hpp"
#include "sim/rng.hpp"

using namespace decentnet;

int main(int argc, char** argv) {
  bench::ExperimentHarness ex("E6_selfish", argc, argv, {.seed = 42});
  ex.describe(
      "E6: selfish mining revenue vs pool size",
      "a minority pool (alpha > (1-gamma)/(3-2gamma)) earns more than its "
      "fair share by withholding blocks [Eyal & Sirer]",
      "Monte-Carlo of the withholding state machine (2M block events per "
      "point) against the closed-form revenue; gamma = tie-break share");

  for (const double gamma : {0.0, 0.5, 1.0}) {
    for (const double alpha :
         {0.10, 0.20, 0.25, 0.30, 1.0 / 3.0, 0.35, 0.40, 0.45}) {
      sim::Rng rng(ex.seed());
      const auto out =
          chain::simulate_selfish_mining(alpha, gamma, 2'000'000, rng);
      const double analytic = chain::selfish_revenue_analytic(alpha, gamma);
      ex.add_row({{"gamma", bench::Value(gamma, 1)},
                  {"threshold_alpha",
                   bench::Value(chain::selfish_threshold(gamma), 3)},
                  {"alpha", bench::Value(alpha, 3)},
                  {"fair_share", bench::Value(alpha, 3)},
                  {"simulated", bench::Value(out.pool_revenue_share(), 4)},
                  {"analytic", bench::Value(analytic, 4)},
                  {"stale_rate", bench::Value(out.stale_rate(), 4)},
                  {"profitable",
                   out.pool_revenue_share() > alpha ? "YES" : "no"}});
    }
  }
  return ex.finish();
}
