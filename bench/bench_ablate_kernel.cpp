// Ablation: kernel and crypto micro-costs (google-benchmark).
//
// DESIGN.md calls out two engineering choices worth quantifying: the
// binary-heap event queue (every protocol action pays this) and using real
// SHA-256 for integrity while *simulating* the mining search. These micros
// bound how large an experiment the DES can run per wall-clock second.
#include <benchmark/benchmark.h>

#include <memory>

#include "chain/blocktree.hpp"
#include "chain/ledger.hpp"
#include "chain/types.hpp"
#include "chain/wallet.hpp"
#include "crypto/hash.hpp"
#include "crypto/merkle.hpp"
#include "sim/simulator.hpp"

using namespace decentnet;

static void BM_SimulatorScheduleRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulator simu(1);
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < n; ++i) {
      simu.schedule(static_cast<sim::SimDuration>(i % 1000),
                    [&acc] { ++acc; });
    }
    simu.run_all();
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SimulatorScheduleRun)->Arg(1000)->Arg(100000);

static void BM_SimulatorPeriodicTimers(benchmark::State& state) {
  const auto timers = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulator simu(2);
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < timers; ++i) {
      simu.schedule_periodic(sim::seconds(1), sim::seconds(1),
                             [&acc] { ++acc; });
    }
    simu.run_until(sim::minutes(1));
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_SimulatorPeriodicTimers)->Arg(100)->Arg(1000);

static void BM_Sha256(benchmark::State& state) {
  const std::string payload(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::sha256(payload));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(65536);

static void BM_MerkleRoot(benchmark::State& state) {
  const auto leaves_n = static_cast<std::size_t>(state.range(0));
  std::vector<crypto::Hash256> leaves;
  for (std::size_t i = 0; i < leaves_n; ++i) {
    leaves.push_back(crypto::sha256(std::to_string(i)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::MerkleTree::compute_root(leaves));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(leaves_n));
}
BENCHMARK(BM_MerkleRoot)->Arg(16)->Arg(256)->Arg(4096);

static void BM_TxValidate(benchmark::State& state) {
  // Full signature-checked transaction validation, the per-tx cost every
  // full node pays in the E5 experiments.
  const chain::Wallet alice = chain::Wallet::from_seed(0xBEEF1);
  const chain::Wallet bob = chain::Wallet::from_seed(0xBEEF2);
  chain::UtxoSet utxo;
  const auto genesis =
      chain::make_genesis_multi({{alice.address(), 1'000'000}}, 1.0);
  (void)utxo.apply_block(*genesis, 0);
  const auto tx = alice.pay(utxo, bob.address(), 1000, 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(utxo.check_transaction(*tx, false, 0));
  }
}
BENCHMARK(BM_TxValidate);

BENCHMARK_MAIN();
