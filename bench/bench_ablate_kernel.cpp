// Ablation: kernel and crypto micro-costs.
//
// DESIGN.md calls out two engineering choices worth quantifying: the
// binary-heap event queue (every protocol action pays this) and using real
// SHA-256 for integrity while *simulating* the mining search. These micros
// bound how large an experiment the DES can run per wall-clock second.
//
// Timing cells are wall-clock and appear only in the table (excluded from
// the JSON artifact, which stays byte-deterministic); the JSON rows carry
// the deterministic work counts instead.
#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "chain/blocktree.hpp"
#include "chain/ledger.hpp"
#include "chain/types.hpp"
#include "chain/wallet.hpp"
#include "crypto/hash.hpp"
#include "crypto/merkle.hpp"
#include "sim/simulator.hpp"

using namespace decentnet;

namespace {

/// Run `body` repeatedly until ~0.4 s of wall time has accumulated (at
/// least twice); `body` returns the items it processed per rep, which is
/// accumulated into `items`. Returns {reps, seconds}.
template <typename F>
std::pair<std::uint64_t, double> measure(F&& body, std::uint64_t& items) {
  using clock = std::chrono::steady_clock;
  std::uint64_t reps = 0;
  items = 0;
  const auto start = clock::now();
  double elapsed = 0;
  while (reps < 2 || elapsed < 0.4) {
    items += body();
    ++reps;
    elapsed = std::chrono::duration<double>(clock::now() - start).count();
  }
  return {reps, elapsed};
}

std::uint64_t run_schedule(std::size_t n, bool detached) {
  sim::Simulator simu(1);
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (detached) {
      // The fast path: no cancellable handle, no alive-flag allocation.
      simu.post(static_cast<sim::SimDuration>(i % 1000), [&acc] { ++acc; });
    } else {
      simu.schedule(static_cast<sim::SimDuration>(i % 1000),
                    [&acc] { ++acc; });
    }
  }
  simu.run_all();
  return acc;
}

std::uint64_t run_periodic(std::size_t timers) {
  sim::Simulator simu(2);
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < timers; ++i) {
    simu.schedule_periodic(sim::seconds(1), sim::seconds(1),
                           [&acc] { ++acc; });
  }
  simu.run_until(sim::minutes(1));
  return acc;
}

}  // namespace

int main(int argc, char** argv) {
  bench::ExperimentHarness ex("ablate_kernel", argc, argv, {});
  ex.describe(
      "Ablation: kernel and crypto micro-costs",
      "(engineering check, not a paper claim) the event queue and the real "
      "SHA-256 bound how much simulated protocol work fits in a wall-clock "
      "second; the detached post() path avoids the per-event handle "
      "allocation",
      "each micro runs >=0.4 s of wall time; items/s is wall-clock (table "
      "only), the JSON rows carry deterministic work counts");

  // Event queue: schedule-then-drain, cancellable vs detached events.
  for (const std::size_t n : {std::size_t{1000}, std::size_t{100000}}) {
    for (const bool detached : {false, true}) {
      std::uint64_t items = 0;
      const auto [reps, secs] =
          measure([&] { return run_schedule(n, detached); }, items);
      const double rate = static_cast<double>(items) / secs;
      std::printf("%-9s n=%-6zu : %10.0f events/s\n",
                  detached ? "detached" : "handled", n, rate);
      ex.add_row({{"micro", detached ? "sim_post_detached" : "sim_schedule"},
                  {"arg", std::uint64_t{n}},
                  {"events_per_rep", items / reps},
                  {"rate_per_s", bench::Value::timing(rate, 0)}});
    }
  }

  for (const std::size_t timers : {std::size_t{100}, std::size_t{1000}}) {
    std::uint64_t items = 0;
    const auto [reps, secs] =
        measure([&] { return run_periodic(timers); }, items);
    ex.add_row({{"micro", "sim_periodic_timers"},
                {"arg", std::uint64_t{timers}},
                {"events_per_rep", items / reps},
                {"rate_per_s",
                 bench::Value::timing(static_cast<double>(items) / secs,
                                      0)}});
  }

  // Real SHA-256 over message-sized payloads (rate column is MB/s here).
  for (const std::size_t size :
       {std::size_t{64}, std::size_t{1024}, std::size_t{65536}}) {
    const std::string payload(size, 'x');
    std::uint64_t items = 0;
    const auto [reps, secs] = measure(
        [&] {
          std::uint64_t acc = 0;
          for (int i = 0; i < 64; ++i) {
            acc += crypto::sha256(payload).bytes[0] & 1u;
          }
          return std::uint64_t{64} + (acc & 0u);
        },
        items);
    (void)reps;
    ex.add_row({{"micro", "sha256_mb_per_s"},
                {"arg", std::uint64_t{size}},
                {"events_per_rep", std::uint64_t{64}},
                {"rate_per_s",
                 bench::Value::timing(static_cast<double>(items) *
                                          static_cast<double>(size) / secs /
                                          1e6,
                                      1)}});
  }

  // Merkle root over leaf batches (per-block cost; rate is leaves/s).
  for (const std::size_t leaves_n :
       {std::size_t{16}, std::size_t{256}, std::size_t{4096}}) {
    std::vector<crypto::Hash256> leaves;
    for (std::size_t i = 0; i < leaves_n; ++i) {
      leaves.push_back(crypto::sha256(std::to_string(i)));
    }
    std::uint64_t items = 0;
    const auto [reps, secs] = measure(
        [&] {
          volatile auto first =
              crypto::MerkleTree::compute_root(leaves).bytes[0];
          (void)first;
          return leaves.size();
        },
        items);
    (void)reps;
    ex.add_row({{"micro", "merkle_root"},
                {"arg", std::uint64_t{leaves_n}},
                {"events_per_rep", std::uint64_t{leaves_n}},
                {"rate_per_s",
                 bench::Value::timing(static_cast<double>(items) / secs,
                                      0)}});
  }

  // Full signature-checked transaction validation, the per-tx cost every
  // full node pays in the E5 experiments.
  {
    const chain::Wallet alice = chain::Wallet::from_seed(0xBEEF1);
    const chain::Wallet bob = chain::Wallet::from_seed(0xBEEF2);
    chain::UtxoSet utxo;
    const auto genesis =
        chain::make_genesis_multi({{alice.address(), 1'000'000}}, 1.0);
    (void)utxo.apply_block(*genesis, 0);
    const auto tx = alice.pay(utxo, bob.address(), 1000, 10);
    std::uint64_t items = 0;
    const auto [reps, secs] = measure(
        [&] {
          std::uint64_t checked = 0;
          for (int i = 0; i < 64; ++i) {
            if (!utxo.check_transaction(*tx, false, 0).has_value()) ++checked;
          }
          return checked;
        },
        items);
    (void)reps;
    ex.add_row({{"micro", "tx_validate"},
                {"arg", std::uint64_t{1}},
                {"events_per_rep", std::uint64_t{64}},
                {"rate_per_s",
                 bench::Value::timing(static_cast<double>(items) / secs,
                                      0)}});
  }

  return ex.finish();
}
