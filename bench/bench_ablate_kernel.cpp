// Ablation: kernel and crypto micro-costs.
//
// DESIGN.md calls out two engineering choices worth quantifying: the event
// queue (every protocol action pays this) and using real SHA-256 for
// integrity while *simulating* the mining search. These micros bound how
// large an experiment the DES can run per wall-clock second.
//
// The kernel rows measure the slab kernel (InlineFn callbacks, slot +
// generation handles, indexed 4-ary heap) against `legacy`, a faithful
// replica of the pre-slab kernel (std::function callbacks, shared_ptr<bool>
// alive flags, std::priority_queue over by-value events), across post/
// schedule/cancel mixes and queue depths 1e2-1e6.
//
// Timing cells are wall-clock and appear only in the table (excluded from
// the JSON artifact, which stays byte-deterministic); the JSON rows carry
// the deterministic work counts instead.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "chain/blocktree.hpp"
#include "chain/ledger.hpp"
#include "chain/types.hpp"
#include "chain/wallet.hpp"
#include "crypto/hash.hpp"
#include "crypto/merkle.hpp"
#include "sim/sharding.hpp"
#include "sim/simulator.hpp"
#include "sim/telemetry.hpp"

using namespace decentnet;

namespace legacy {

// The seed kernel, reproduced verbatim in miniature: per-event std::function
// plus a shared_ptr<bool> cancellation flag for handled events, and a
// std::priority_queue that sifts whole events by value.
class Simulator {
 public:
  using Callback = std::function<void()>;

  sim::SimTime now() const { return now_; }

  std::shared_ptr<bool> schedule(sim::SimDuration delay, Callback fn) {
    auto alive = std::make_shared<bool>(true);
    push(now_ + (delay < 0 ? 0 : delay), std::move(fn), alive);
    return alive;
  }

  void post(sim::SimDuration delay, Callback fn) {
    push(now_ + (delay < 0 ? 0 : delay), std::move(fn), nullptr);
  }

  std::size_t run_all() {
    std::size_t n = 0;
    while (!queue_.empty()) {
      Event ev = std::move(const_cast<Event&>(queue_.top()));
      queue_.pop();
      if (ev.alive) {
        if (!*ev.alive) continue;
        *ev.alive = false;
      }
      now_ = ev.when;
      ev.fn();
      ++n;
    }
    return n;
  }

 private:
  struct Event {
    sim::SimTime when;
    std::uint64_t seq;
    Callback fn;
    std::shared_ptr<bool> alive;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  void push(sim::SimTime when, Callback fn, std::shared_ptr<bool> alive) {
    queue_.push(Event{when, seq_++, std::move(fn), std::move(alive)});
  }

  sim::SimTime now_ = 0;
  std::uint64_t seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace legacy

namespace {

/// Run `body` repeatedly until ~0.4 s of wall time has accumulated (at
/// least twice); `body` returns the items it processed per rep, which is
/// accumulated into `items`. One untimed warmup rep first, so no cell pays
/// the process's cold page faults while a later cell runs on the heap the
/// earlier ones warmed. Returns {reps, seconds}.
template <typename F>
std::pair<std::uint64_t, double> measure(F&& body, std::uint64_t& items) {
  using clock = std::chrono::steady_clock;
  std::uint64_t reps = 0;
  items = 0;
  (void)body();  // warmup
  const auto start = clock::now();
  double elapsed = 0;
  while (reps < 2 || elapsed < 0.4) {
    items += body();
    ++reps;
    elapsed = std::chrono::duration<double>(clock::now() - start).count();
  }
  return {reps, elapsed};
}

// Schedule `n` events (delays cycling over 1000 distinct times, so the heap
// carries ~n live entries), then drain. `detached` posts fire-and-forget
// events; otherwise every event gets a cancellable handle.
template <typename Sim>
std::uint64_t run_fill_drain(std::size_t n, bool detached) {
  Sim simu;
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (detached) {
      simu.post(static_cast<sim::SimDuration>(i % 1000), [&acc] { ++acc; });
    } else {
      (void)simu.schedule(static_cast<sim::SimDuration>(i % 1000),
                          [&acc] { ++acc; });
    }
  }
  simu.run_all();
  return acc;
}

// Delivery-shaped posts: each event carries a 56-byte capture (a counter
// reference plus a 48-byte payload, the size of a net::Message — what
// Network::deliver posts for every message in every experiment).
// std::function's small-buffer (16 bytes in libstdc++) cannot hold it, so
// the legacy kernel heap-allocates and frees once per event; InlineFn<64>
// keeps it inline in the slab.
struct MsgPayload {
  std::uint64_t w[6];
};

template <typename Sim>
std::uint64_t run_fill_drain_msg(std::size_t n) {
  Sim simu;
  std::uint64_t acc = 0;
  const MsgPayload p{{1, 2, 3, 4, 5, 6}};
  for (std::size_t i = 0; i < n; ++i) {
    simu.post(static_cast<sim::SimDuration>(i % 1000),
              [&acc, p] { acc += p.w[0]; });
  }
  simu.run_all();
  return acc;
}

// The msg48 drain with sim-time telemetry optionally attached. tel == null
// runs the untouched hot loop; tel != null selects the instrumented loop
// with a cadence main() picks far past the run's horizon, so the measured
// delta is the instrumented loop's per-event cost (one load + compare) with
// zero sink I/O inside the timed region.
std::uint64_t run_fill_drain_telemetry(std::size_t n, sim::Telemetry* tel) {
  sim::Simulator simu;
  if (tel != nullptr) tel->attach(simu);
  std::uint64_t acc = 0;
  const MsgPayload p{{1, 2, 3, 4, 5, 6}};
  for (std::size_t i = 0; i < n; ++i) {
    simu.post(static_cast<sim::SimDuration>(i % 1000),
              [&acc, p] { acc += p.w[0]; });
  }
  simu.run_all();
  return acc;
}

// Steady-state hot path: `depth` self-re-posting chains, each re-posting
// itself `rounds` times. The queue holds `depth` events throughout — the
// message-delivery shape every experiment's inner loop reduces to.
std::uint64_t run_steady_state(std::size_t depth, std::size_t rounds) {
  sim::Simulator simu;
  std::uint64_t acc = 0;
  std::function<void(std::size_t)> chain = [&](std::size_t remaining) {
    ++acc;
    if (remaining > 0) {
      simu.post(1, [&chain, remaining] { chain(remaining - 1); });
    }
  };
  for (std::size_t d = 0; d < depth; ++d) {
    simu.post(1, [&chain, rounds] { chain(rounds); });
  }
  simu.run_all();
  return acc;
}

std::uint64_t run_legacy_steady_state(std::size_t depth, std::size_t rounds) {
  legacy::Simulator simu;
  std::uint64_t acc = 0;
  std::function<void(std::size_t)> chain = [&](std::size_t remaining) {
    ++acc;
    if (remaining > 0) {
      simu.post(1, [&chain, remaining] { chain(remaining - 1); });
    }
  };
  for (std::size_t d = 0; d < depth; ++d) {
    simu.post(1, [&chain, rounds] { chain(rounds); });
  }
  simu.run_all();
  return acc;
}

// Cancel mix: schedule `n` handled events, cancel every other one, drain.
// Exercises handle allocation + lazy reclamation on both kernels.
std::uint64_t run_cancel_mix_slab(std::size_t n) {
  sim::Simulator simu;
  std::uint64_t acc = 0;
  std::vector<sim::EventHandle> handles;
  handles.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    handles.push_back(simu.schedule(static_cast<sim::SimDuration>(i % 1000),
                                    [&acc] { ++acc; }));
  }
  for (std::size_t i = 0; i < n; i += 2) handles[i].cancel();
  simu.run_all();
  return n;  // count scheduled+cancelled work, same on both kernels
}

std::uint64_t run_cancel_mix_legacy(std::size_t n) {
  legacy::Simulator simu;
  std::uint64_t acc = 0;
  std::vector<std::shared_ptr<bool>> handles;
  handles.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    handles.push_back(simu.schedule(static_cast<sim::SimDuration>(i % 1000),
                                    [&acc] { ++acc; }));
  }
  for (std::size_t i = 0; i < n; i += 2) *handles[i] = false;
  simu.run_all();
  return n;
}

// Sharded steady state: `depth` re-posting token chains spread round-robin
// over `shards` shards; every 16th hop crosses to the next shard through the
// deterministic mailbox at now + lookahead (the conservative window). The
// same workload runs on 1..8 shards and at 1..S worker threads, so the row
// pair quantifies both the barrier overhead (S>1, threads=1 vs the
// single-shard kernel) and the parallel speedup (threads=S vs threads=1).
// Returns the kernel's deterministic event count — identical at any thread
// count, which main() cross-checks.
std::uint64_t run_sharded_steady(std::size_t shards, std::size_t depth,
                                 std::size_t rounds, std::size_t threads) {
  sim::ShardedKernel kernel(0xAB1A7E, shards);
  const sim::SimDuration kWindow = 10;
  kernel.set_lookahead(kWindow);
  // Per-shard accumulators: each token step runs on the shard it names, so
  // every slot has a single writer.
  std::vector<std::uint64_t> acc(shards, 0);
  std::function<void(std::size_t, std::size_t)> step =
      [&](std::size_t s, std::size_t remaining) {
        ++acc[s];
        if (remaining == 0) return;
        if (shards > 1 && remaining % 16 == 0) {
          const std::size_t dst = (s + 1) % shards;
          kernel.post_cross(
              dst, kernel.shard(s).now() + kWindow,
              [&step, dst, remaining] { step(dst, remaining - 1); },
              "ablate/hop");
        } else {
          kernel.shard(s).post(
              1, [&step, s, remaining] { step(s, remaining - 1); },
              "ablate/step");
        }
      };
  for (std::size_t d = 0; d < depth; ++d) {
    const std::size_t s = d % shards;
    kernel.shard(s).post(1, [&step, s, rounds] { step(s, rounds); },
                         "ablate/step");
  }
  kernel.run_until(sim::hours(24 * 365), threads);
  std::uint64_t total = 0;
  for (const std::uint64_t a : acc) total += a;
  return total;
}

std::uint64_t run_periodic(std::size_t timers) {
  sim::Simulator simu;
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < timers; ++i) {
    simu.schedule_periodic(sim::seconds(1), sim::seconds(1),
                           [&acc] { ++acc; });
  }
  simu.run_until(sim::minutes(1));
  return acc;
}

}  // namespace

int main(int argc, char** argv) {
  bench::ExperimentHarness ex("ablate_kernel", argc, argv, {.shard_aware = true});
  ex.describe(
      "Ablation: kernel and crypto micro-costs",
      "(engineering check, not a paper claim) the event queue and the real "
      "SHA-256 bound how much simulated protocol work fits in a wall-clock "
      "second; the slab kernel (inline callbacks, indexed 4-ary heap) is "
      "measured against a replica of the pre-slab kernel",
      "each micro runs >=0.4 s of wall time; items/s is wall-clock (table "
      "only), the JSON rows carry deterministic work counts");

  const std::size_t kDepths[] = {100, 10'000, 100'000, 1'000'000};

  // Pre-warm the allocator into its steady regime (grown heap, raised
  // dynamic mmap threshold) so cell order can't leak into the numbers.
  run_fill_drain<sim::Simulator>(1'000'000, true);
  run_fill_drain<legacy::Simulator>(1'000'000, true);

  // The headline: message-delivery-shaped posts (48-byte payload capture),
  // the kernel call every simulated network message turns into.
  for (const std::size_t n :
       {std::size_t{10'000}, std::size_t{100'000}, std::size_t{1'000'000}}) {
    std::uint64_t items = 0;
    auto [reps, secs] =
        measure([&] { return run_fill_drain_msg<sim::Simulator>(n); }, items);
    double rate = static_cast<double>(items) / secs;
    std::printf("slab   post-msg48 n=%-8zu: %10.0f events/s\n", n, rate);
    ex.add_row({{"micro", "sim_post_msg48"},
                {"kernel", "slab"},
                {"arg", std::uint64_t{n}},
                {"events_per_rep", items / reps},
                {"rate_per_s", bench::Value::timing(rate, 0)}});
    std::uint64_t legacy_items = 0;
    auto [legacy_reps, legacy_secs] = measure(
        [&] { return run_fill_drain_msg<legacy::Simulator>(n); },
        legacy_items);
    rate = static_cast<double>(legacy_items) / legacy_secs;
    std::printf("legacy post-msg48 n=%-8zu: %10.0f events/s\n", n, rate);
    ex.add_row({{"micro", "sim_post_msg48"},
                {"kernel", "legacy"},
                {"arg", std::uint64_t{n}},
                {"events_per_rep", legacy_items / legacy_reps},
                {"rate_per_s", bench::Value::timing(rate, 0)}});
  }

  // Telemetry off/on ablation (observability must be pay-for-use). "off" is
  // the untouched hot drain loop — the same codegen every telemetry-less
  // run uses, and the row the release-bench perf gates hold against the
  // pre-telemetry baselines. "on" attaches a Telemetry whose cadence never
  // comes due inside the run, isolating the instrumented loop's per-event
  // cost (one load + compare) from sink I/O.
  {
    const std::size_t n = 1'000'000;
    std::uint64_t items = 0;
    auto [reps, secs] = measure(
        [&] { return run_fill_drain_telemetry(n, nullptr); }, items);
    double rate = static_cast<double>(items) / secs;
    std::printf("slab   telem-off n=%-8zu: %10.0f events/s\n", n, rate);
    ex.add_row({{"micro", "sim_telemetry"},
                {"kernel", "off"},
                {"arg", std::uint64_t{n}},
                {"events_per_rep", items / reps},
                {"rate_per_s", bench::Value::timing(rate, 0)}});

    const char* const scratch = "TELEMETRY_ablate_scratch.jsonl";
    {
      sim::SeriesSink sink(scratch);
      sim::Telemetry tel(sink, sim::seconds(10));
      std::uint64_t items_on = 0;
      auto [reps_on, secs_on] = measure(
          [&] { return run_fill_drain_telemetry(n, &tel); }, items_on);
      rate = static_cast<double>(items_on) / secs_on;
      std::printf("slab   telem-on  n=%-8zu: %10.0f events/s\n", n, rate);
      ex.add_row({{"micro", "sim_telemetry"},
                  {"kernel", "on"},
                  {"arg", std::uint64_t{n}},
                  {"events_per_rep", items_on / reps_on},
                  {"rate_per_s", bench::Value::timing(rate, 0)}});
    }
    std::remove(scratch);
  }

  // Fill-then-drain, post (detached) and schedule (handled), old vs new.
  for (const bool detached : {true, false}) {
    for (const std::size_t n : kDepths) {
      std::uint64_t items = 0;
      auto [reps, secs] = measure(
          [&] { return run_fill_drain<sim::Simulator>(n, detached); }, items);
      double rate = static_cast<double>(items) / secs;
      std::printf("slab   %-9s n=%-8zu : %10.0f events/s\n",
                  detached ? "post" : "schedule", n, rate);
      ex.add_row({{"micro", detached ? "sim_post_detached" : "sim_schedule"},
                  {"kernel", "slab"},
                  {"arg", std::uint64_t{n}},
                  {"events_per_rep", items / reps},
                  {"rate_per_s", bench::Value::timing(rate, 0)}});

      std::uint64_t legacy_items = 0;
      auto [legacy_reps, legacy_secs] = measure(
          [&] { return run_fill_drain<legacy::Simulator>(n, detached); },
          legacy_items);
      rate = static_cast<double>(legacy_items) / legacy_secs;
      std::printf("legacy %-9s n=%-8zu : %10.0f events/s\n",
                  detached ? "post" : "schedule", n, rate);
      ex.add_row({{"micro", detached ? "sim_post_detached" : "sim_schedule"},
                  {"kernel", "legacy"},
                  {"arg", std::uint64_t{n}},
                  {"events_per_rep", legacy_items / legacy_reps},
                  {"rate_per_s", bench::Value::timing(rate, 0)}});
    }
  }

  // Steady-state re-posting chains (the message-delivery shape).
  for (const std::size_t depth : {std::size_t{100}, std::size_t{10'000}}) {
    const std::size_t rounds = 1'000'000 / depth;
    std::uint64_t items = 0;
    auto [reps, secs] =
        measure([&] { return run_steady_state(depth, rounds); }, items);
    std::printf("slab   steady    d=%-8zu : %10.0f events/s\n", depth,
                static_cast<double>(items) / secs);
    ex.add_row({{"micro", "sim_steady_state"},
                {"kernel", "slab"},
                {"arg", std::uint64_t{depth}},
                {"events_per_rep", items / reps},
                {"rate_per_s",
                 bench::Value::timing(static_cast<double>(items) / secs, 0)}});
    std::uint64_t legacy_items = 0;
    auto [legacy_reps, legacy_secs] = measure(
        [&] { return run_legacy_steady_state(depth, rounds); }, legacy_items);
    std::printf("legacy steady    d=%-8zu : %10.0f events/s\n", depth,
                static_cast<double>(legacy_items) / legacy_secs);
    ex.add_row(
        {{"micro", "sim_steady_state"},
         {"kernel", "legacy"},
         {"arg", std::uint64_t{depth}},
         {"events_per_rep", legacy_items / legacy_reps},
         {"rate_per_s",
          bench::Value::timing(
              static_cast<double>(legacy_items) / legacy_secs, 0)}});
  }

  // Cancel-heavy mix: half the scheduled events are cancelled before firing.
  for (const std::size_t n : {std::size_t{10'000}, std::size_t{100'000}}) {
    std::uint64_t items = 0;
    auto [reps, secs] =
        measure([&] { return run_cancel_mix_slab(n); }, items);
    std::printf("slab   cancelmix n=%-8zu : %10.0f events/s\n", n,
                static_cast<double>(items) / secs);
    ex.add_row({{"micro", "sim_cancel_mix"},
                {"kernel", "slab"},
                {"arg", std::uint64_t{n}},
                {"events_per_rep", items / reps},
                {"rate_per_s",
                 bench::Value::timing(static_cast<double>(items) / secs, 0)}});
    std::uint64_t legacy_items = 0;
    auto [legacy_reps, legacy_secs] =
        measure([&] { return run_cancel_mix_legacy(n); }, legacy_items);
    std::printf("legacy cancelmix n=%-8zu : %10.0f events/s\n", n,
                static_cast<double>(legacy_items) / legacy_secs);
    ex.add_row(
        {{"micro", "sim_cancel_mix"},
         {"kernel", "legacy"},
         {"arg", std::uint64_t{n}},
         {"events_per_rep", legacy_items / legacy_reps},
         {"rate_per_s",
          bench::Value::timing(
              static_cast<double>(legacy_items) / legacy_secs, 0)}});
  }

  // Sharded vs single-shard mix: the same re-posting workload across shard
  // counts and depths, timed at 1 worker thread (barrier overhead) and at
  // S worker threads (parallel speedup). The JSON cells are the
  // deterministic event counts; rates stay table-only.
  for (const std::size_t shards :
       {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    for (const std::size_t depth :
         {std::size_t{10'000}, std::size_t{100'000}, std::size_t{1'000'000}}) {
      const std::size_t rounds = std::max<std::size_t>(1, 2'000'000 / depth);
      std::uint64_t items = 0;
      auto [reps, secs] = measure(
          [&] { return run_sharded_steady(shards, depth, rounds, 1); }, items);
      const double rate_t1 = static_cast<double>(items) / secs;
      const std::uint64_t events_t1 = items / reps;
      std::uint64_t items_p = 0;
      auto [reps_p, secs_p] = measure(
          [&] { return run_sharded_steady(shards, depth, rounds, shards); },
          items_p);
      const double rate_ts = static_cast<double>(items_p) / secs_p;
      const std::uint64_t events_ts = items_p / reps_p;
      std::printf(
          "shard  steady    S=%zu d=%-8zu: %10.0f events/s (1 thr) "
          "%10.0f events/s (%zu thr)\n",
          shards, depth, rate_t1, rate_ts, shards);
      ex.add_row({{"micro", "sim_sharded_steady"},
                  {"kernel", "sharded"},
                  {"arg", std::uint64_t{depth}},
                  {"shards", std::uint64_t{shards}},
                  {"events_per_rep", events_t1},
                  // The determinism contract, checked in-band: the event
                  // count must not depend on the worker-thread count.
                  {"det_match", std::uint64_t{events_t1 == events_ts ? 1u : 0u}},
                  {"rate_per_s", bench::Value::timing(rate_t1, 0)},
                  {"rate_threads_per_s", bench::Value::timing(rate_ts, 0)}});
    }
  }

  for (const std::size_t timers : {std::size_t{100}, std::size_t{1000}}) {
    std::uint64_t items = 0;
    const auto [reps, secs] =
        measure([&] { return run_periodic(timers); }, items);
    ex.add_row({{"micro", "sim_periodic_timers"},
                {"kernel", "slab"},
                {"arg", std::uint64_t{timers}},
                {"events_per_rep", items / reps},
                {"rate_per_s",
                 bench::Value::timing(static_cast<double>(items) / secs,
                                      0)}});
  }

  // Real SHA-256 over message-sized payloads (rate column is MB/s here).
  for (const std::size_t size :
       {std::size_t{64}, std::size_t{1024}, std::size_t{65536}}) {
    const std::string payload(size, 'x');
    std::uint64_t items = 0;
    const auto [reps, secs] = measure(
        [&] {
          std::uint64_t acc = 0;
          for (int i = 0; i < 64; ++i) {
            acc += crypto::sha256(payload).bytes[0] & 1u;
          }
          return std::uint64_t{64} + (acc & 0u);
        },
        items);
    (void)reps;
    ex.add_row({{"micro", "sha256_mb_per_s"},
                {"kernel", "-"},
                {"arg", std::uint64_t{size}},
                {"events_per_rep", std::uint64_t{64}},
                {"rate_per_s",
                 bench::Value::timing(static_cast<double>(items) *
                                          static_cast<double>(size) / secs /
                                          1e6,
                                      1)}});
  }

  // Merkle root over leaf batches (per-block cost; rate is leaves/s).
  for (const std::size_t leaves_n :
       {std::size_t{16}, std::size_t{256}, std::size_t{4096}}) {
    std::vector<crypto::Hash256> leaves;
    for (std::size_t i = 0; i < leaves_n; ++i) {
      leaves.push_back(crypto::sha256(std::to_string(i)));
    }
    std::uint64_t items = 0;
    const auto [reps, secs] = measure(
        [&] {
          volatile auto first =
              crypto::MerkleTree::compute_root(leaves).bytes[0];
          (void)first;
          return leaves.size();
        },
        items);
    (void)reps;
    ex.add_row({{"micro", "merkle_root"},
                {"kernel", "-"},
                {"arg", std::uint64_t{leaves_n}},
                {"events_per_rep", std::uint64_t{leaves_n}},
                {"rate_per_s",
                 bench::Value::timing(static_cast<double>(items) / secs,
                                      0)}});
  }

  // Full signature-checked transaction validation, the per-tx cost every
  // full node pays in the E5 experiments.
  {
    const chain::Wallet alice = chain::Wallet::from_seed(0xBEEF1);
    const chain::Wallet bob = chain::Wallet::from_seed(0xBEEF2);
    chain::UtxoSet utxo;
    const auto genesis =
        chain::make_genesis_multi({{alice.address(), 1'000'000}}, 1.0);
    (void)utxo.apply_block(*genesis, 0);
    const auto tx = alice.pay(utxo, bob.address(), 1000, 10);
    std::uint64_t items = 0;
    const auto [reps, secs] = measure(
        [&] {
          std::uint64_t checked = 0;
          for (int i = 0; i < 64; ++i) {
            if (!utxo.check_transaction(*tx, false, 0).has_value()) ++checked;
          }
          return checked;
        },
        items);
    (void)reps;
    ex.add_row({{"micro", "tx_validate"},
                {"kernel", "-"},
                {"arg", std::uint64_t{1}},
                {"events_per_rep", std::uint64_t{64}},
                {"rate_per_s",
                 bench::Value::timing(static_cast<double>(items) / secs,
                                      0)}});
  }

  return ex.finish();
}
